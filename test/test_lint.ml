(* Tier-2: the smartlint analyzer against the lint_fixtures mini-project,
   plus the whole-stack determinism regression the linter exists to guard.

   Tests execute with cwd [_build/default/test]; [..] is the build-tree
   root, which mirrors the source tree, so the same path serves as both
   [root] (sources, dune files, allowlists) and [build_root] (cmts). *)

module D = Smartlint.Diagnostic
module Dr = Smartlint.Driver
module U = Smart_util
module S = Smart_sim
module H = Smart_host
module C = Smart_core

let fixture_config ~allow =
  {
    Dr.root = "..";
    build_root = "..";
    lib_dirs = [ "test/lint_fixtures" ];
    sans_io_dirs = [ "test/lint_fixtures" ];
    proto_dirs = [ "test/lint_fixtures" ];
    program_dirs = [ "test/lint_fixtures/programs" ];
    unchecked_files = [];
    allow_path = allow;
    only = [];
    skip = [];
    strict = false;
  }

let run ?(only = []) ~allow () =
  match Dr.run { (fixture_config ~allow) with only } with
  | Ok r -> r
  | Error e -> Alcotest.failf "smartlint failed: %s" e

(* No allowlist: every planted violation must surface. *)
let report = lazy (run ~allow:"no-such.allow" ())

let find (report : Dr.report) ~rule ~file ~line =
  List.filter
    (fun (d : D.t) ->
      String.equal d.rule rule && String.equal d.file file && d.line = line)
    report.diagnostics

let check_hit ?(severity = D.Error) ~rule ~file ~line () =
  let report = Lazy.force report in
  match find report ~rule ~file ~line with
  | [] ->
    Alcotest.failf "expected %s diagnostic at %s:%d, got none in:\n%s" rule file
      line
      (String.concat "\n" (List.map D.to_string report.diagnostics))
  | d :: _ ->
    Alcotest.(check bool)
      (Printf.sprintf "%s %s:%d severity" rule file line)
      true
      (d.D.severity = severity)

let fx name = "test/lint_fixtures/" ^ name

let test_io_purity () =
  check_hit ~rule:"io-purity" ~file:(fx "fx_io.ml") ~line:3 ();
  check_hit ~rule:"io-purity" ~file:(fx "fx_io.ml") ~line:4 ();
  (* the dune stanza lists unix and fx_io really imports it *)
  check_hit ~rule:"io-purity" ~file:(fx "dune") ~line:1 ()

let test_determinism_rule () =
  check_hit ~rule:"determinism" ~file:(fx "fx_random.ml") ~line:3 ();
  check_hit ~rule:"determinism" ~file:(fx "fx_random.ml") ~line:4 ();
  check_hit ~severity:D.Warn ~rule:"determinism" ~file:(fx "fx_random.ml")
    ~line:6 ()

(* A span recorder is exactly where a wall clock sneaks into sans-IO
   code; the rule must see through the record-path indirection. *)
let test_determinism_tracer () =
  check_hit ~rule:"determinism" ~file:(fx "fx_tracer.ml") ~line:11 ();
  check_hit ~rule:"determinism" ~file:(fx "fx_tracer.ml") ~line:15 ()

let test_poly_compare () =
  check_hit ~rule:"poly-compare" ~file:(fx "fx_compare.ml") ~line:5 ();
  check_hit ~rule:"poly-compare" ~file:(fx "fx_compare.ml") ~line:6 ();
  check_hit ~severity:D.Warn ~rule:"poly-compare" ~file:(fx "fx_compare.ml")
    ~line:7 ();
  (* [x <> None] only inspects the tag: exempt *)
  Alcotest.(check (list string))
    "nullary-constructor comparison exempt" []
    (List.map D.to_string
       (find (Lazy.force report) ~rule:"poly-compare" ~file:(fx "fx_compare.ml")
          ~line:8))

let test_unsafe () =
  check_hit ~rule:"unsafe" ~file:(fx "fx_unsafe.ml") ~line:3 ();
  check_hit ~rule:"unsafe" ~file:(fx "fx_unsafe.ml") ~line:4 ();
  check_hit ~rule:"unsafe" ~file:(fx "fx_unsafe.ml") ~line:6 ()

(* Bigarray/Array unsafe accessors: banned by default, waived only for
   the files the config declares unchecked-safe (in the real tree, the
   bytecode interpreter). *)
let test_unchecked_indexing () =
  check_hit ~rule:"unsafe" ~file:(fx "fx_bigarray.ml") ~line:4 ();
  check_hit ~rule:"unsafe" ~file:(fx "fx_bigarray.ml") ~line:6 ();
  let waived =
    match
      Dr.run
        {
          (fixture_config ~allow:"no-such.allow") with
          unchecked_files = [ fx "fx_bigarray.ml" ];
        }
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "smartlint failed: %s" e
  in
  Alcotest.(check (list string))
    "declared file is exempt" []
    (List.map D.to_string
       (List.filter
          (fun (d : D.t) ->
            String.equal d.rule "unsafe"
            && String.equal d.file (fx "fx_bigarray.ml"))
          waived.Dr.diagnostics))

let test_iface () =
  check_hit ~rule:"iface" ~file:(fx "fx_nomli.ml") ~line:1 ();
  Alcotest.(check (list string))
    "modules with .mli pass" []
    (List.map D.to_string
       (find (Lazy.force report) ~rule:"iface" ~file:(fx "fx_io.ml") ~line:1))

let test_severity_model () =
  let r = Lazy.force report in
  Alcotest.(check bool) "errors counted" true (r.Dr.errors >= 10);
  Alcotest.(check bool) "warns counted" true (r.Dr.warns >= 2);
  Alcotest.(check int) "nothing suppressed without an allowlist" 0 r.Dr.suppressed

let test_only_filter () =
  let r = run ~only:[ "iface" ] ~allow:"no-such.allow" () in
  Alcotest.(check bool) "some iface diagnostics" true (r.Dr.errors > 0);
  List.iter
    (fun (d : D.t) ->
      Alcotest.(check string) "only iface survives the filter" "iface" d.rule)
    r.Dr.diagnostics;
  (* each whole-program pass toggles independently *)
  List.iter
    (fun rule ->
      let r = run ~only:[ rule ] ~allow:"no-such.allow" () in
      List.iter
        (fun (d : D.t) ->
          Alcotest.(check string)
            (Printf.sprintf "only %s survives the filter" rule)
            rule d.rule)
        r.Dr.diagnostics;
      if String.equal rule "bytecode" then
        Alcotest.(check int)
          "clean fixture programs: no bytecode diagnostics" 0 r.Dr.errors
      else
        Alcotest.(check bool)
          (Printf.sprintf "some %s diagnostics" rule)
          true (r.Dr.errors > 0))
    [ "effects"; "wire"; "bytecode" ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Whole-program passes                                                 *)
(* ------------------------------------------------------------------ *)

(* Effect inference: fx_chain never references a clock directly; every
   binding reaches one only through fx_chain_util, a stored closure, or
   an optional-argument default. *)
let test_effects () =
  check_hit ~rule:"effects" ~file:(fx "fx_chain.ml") ~line:4 ();
  (* entry *)
  check_hit ~rule:"effects" ~file:(fx "fx_chain.ml") ~line:6 ();
  (* stamp: a let-bound function value, no syntactic call *)
  check_hit ~rule:"effects" ~file:(fx "fx_chain.ml") ~line:8 ();
  (* entry2: three hops, through stamp *)
  check_hit ~rule:"effects" ~file:(fx "fx_chain.ml") ~line:10 ();
  (* sample: the sink hides in the optional-argument default *)
  (match
     find (Lazy.force report) ~rule:"effects" ~file:(fx "fx_chain.ml") ~line:4
   with
  | [] -> Alcotest.fail "no effects diagnostic for Fx_chain.entry"
  | d :: _ ->
    Alcotest.(check bool) "diagnostic names every hop of the chain" true
      (contains
         ~sub:
           "Fx_chain.entry -> Fx_chain_util.hidden_now -> Stdlib.Sys.time"
         d.D.message));
  (match
     find (Lazy.force report) ~rule:"effects" ~file:(fx "fx_chain.ml") ~line:8
   with
  | [] -> Alcotest.fail "no effects diagnostic for Fx_chain.entry2"
  | d :: _ ->
    Alcotest.(check bool) "indirect chain goes through stamp" true
      (contains
         ~sub:
           "Fx_chain.entry2 -> Fx_chain.stamp -> Fx_chain_util.hidden_now \
            -> Stdlib.Sys.time"
         d.D.message));
  (* the binding that touches the clock directly is the determinism
     rule's finding, not re-reported here *)
  Alcotest.(check (list string))
    "no effects diagnostic at the sink itself" []
    (List.map D.to_string
       (List.filter
          (fun (d : D.t) ->
            String.equal d.rule "effects"
            && String.equal d.file (fx "fx_chain_util.ml"))
          (Lazy.force report).Dr.diagnostics))

(* Wire registry: every planted collision in fx_wire surfaces at its
   own line. *)
let test_wire () =
  (* Gamma reuses Beta's payload code 3 *)
  check_hit ~rule:"wire" ~file:(fx "fx_wire.ml") ~line:11 ();
  (* Delta's base code 16 escapes [1, traced_code_offset) *)
  check_hit ~rule:"wire" ~file:(fx "fx_wire.ml") ~line:12 ();
  (* 2 * traced_code_offset > crc_code_offset: ranges overlap *)
  check_hit ~rule:"wire" ~file:(fx "fx_wire.ml") ~line:14 ();
  (* crc_code_offset 24 is not a power of two *)
  check_hit ~rule:"wire" ~file:(fx "fx_wire.ml") ~line:16 ();
  (* option code 2 collides with the ctx_flag bit *)
  check_hit ~rule:"wire" ~file:(fx "fx_wire.ml") ~line:22 ();
  (* result_magic spells the same bytes as query_magic *)
  check_hit ~rule:"wire" ~file:(fx "fx_wire.ml") ~line:28 ()

(* The determinism sinks added for Digest and environment reads. *)
let test_determinism_new_sinks () =
  check_hit ~rule:"determinism" ~file:(fx "fx_digest.ml") ~line:3 ();
  check_hit ~rule:"determinism" ~file:(fx "fx_env.ml") ~line:3 ();
  check_hit ~rule:"determinism" ~file:(fx "fx_env.ml") ~line:5 ()

(* Bytecode rule: the checked-in fixture programs all compile and pass
   the full verifier; a stale fixture is itself an error. *)
let test_bytecode_rule () =
  Alcotest.(check bool) "fixture programs present in the scan tree" true
    (Sys.file_exists "../test/lint_fixtures/programs/sweep_conjunction.req");
  Alcotest.(check (list string))
    "checked-in requirement fixtures verify clean" []
    (List.map D.to_string
       (List.filter
          (fun (d : D.t) -> String.equal d.rule "bytecode")
          (Lazy.force report).Dr.diagnostics));
  (* a program that stops parsing is reported, not skipped *)
  let dir = Filename.temp_file "smartlint" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "broken.req") in
  output_string oc "host_cpu_free >>> (\n";
  close_out oc;
  let diags = Smartlint.Progcheck.check ~root:dir [ "." ] in
  Sys.remove (Filename.concat dir "broken.req");
  Sys.rmdir dir;
  match diags with
  | [ d ] ->
    Alcotest.(check bool) "stale fixture is an error" true
      (d.D.severity = D.Error);
    Alcotest.(check bool) "message says it verifies nothing" true
      (contains ~sub:"verifies nothing" d.D.message)
  | ds ->
    Alcotest.failf "expected one diagnostic for the broken fixture, got %d"
      (List.length ds)

let test_allowlist_suppression () =
  let bare = Lazy.force report in
  let allowed = run ~allow:(fx "fixtures.allow") () in
  (* exactly the fx_allowed entry disappears; everything else stays *)
  Alcotest.(check bool)
    "violation present without allowlist" true
    (find bare ~rule:"poly-compare" ~file:(fx "fx_allowed.ml") ~line:3 <> []);
  Alcotest.(check (list string))
    "violation suppressed with allowlist" []
    (List.map D.to_string
       (find allowed ~rule:"poly-compare" ~file:(fx "fx_allowed.ml") ~line:3));
  Alcotest.(check int) "exactly one diagnostic suppressed" 1 allowed.Dr.suppressed;
  Alcotest.(check int) "one entry loaded" 1 allowed.Dr.allow_size;
  Alcotest.(check int) "errors drop by exactly one" (bare.Dr.errors - 1)
    allowed.Dr.errors

let test_allowlist_unused () =
  let r = run ~allow:(fx "unused.allow") () in
  Alcotest.(check int) "stale entry suppresses nothing" 0 r.Dr.suppressed;
  Alcotest.(check bool) "stale entry reported" true
    (List.exists
       (fun (d : D.t) ->
         String.equal d.rule "allowlist" && d.severity = D.Warn)
       r.Dr.diagnostics)

(* --strict escalates stale allowlist entries from warn to error, so CI
   fails instead of letting exemptions rot. *)
let test_strict_mode () =
  let lax = run ~allow:(fx "unused.allow") () in
  let strict =
    match
      Dr.run { (fixture_config ~allow:(fx "unused.allow")) with strict = true }
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "smartlint failed: %s" e
  in
  let stale (r : Dr.report) =
    List.filter
      (fun (d : D.t) -> String.equal d.rule "allowlist")
      r.Dr.diagnostics
  in
  (match (stale lax, stale strict) with
  | [ l ], [ s ] ->
    Alcotest.(check bool) "warn when lax" true (l.D.severity = D.Warn);
    Alcotest.(check bool) "error when strict" true (s.D.severity = D.Error)
  | l, s ->
    Alcotest.failf "expected one stale-entry diagnostic each, got %d/%d"
      (List.length l) (List.length s));
  Alcotest.(check int) "the escalation moves exactly one warn to error"
    (lax.Dr.errors + 1) strict.Dr.errors;
  Alcotest.(check int) "warns drop by one" (lax.Dr.warns - 1) strict.Dr.warns

(* ------------------------------------------------------------------ *)
(* Report formats: golden text + JSON over the whole fixture tree.      *)
(* Regenerate with LINT_GOLDEN_REGEN=1 dune runtest (writes back into   *)
(* the source tree, cwd being _build/default/test).                     *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let regen = Option.is_some (Sys.getenv_opt "LINT_GOLDEN_REGEN")

(* cwd is _build/default/test; the source tree's test/ is three up *)
let source_golden name = "../../../test/" ^ name

let render_text r =
  let path = Filename.temp_file "smartlint" ".txt" in
  let oc = open_out path in
  Dr.print_report ~out:oc r;
  close_out oc;
  let text = read_file path in
  Sys.remove path;
  text

let test_golden_text () =
  let actual = render_text (Lazy.force report) in
  if regen then begin
    let oc = open_out (source_golden "lint_golden.txt") in
    output_string oc actual;
    close_out oc
  end
  else
    Alcotest.(check string) "text report pinned" (read_file "lint_golden.txt")
      actual

let test_golden_json () =
  let actual = Dr.report_to_json (Lazy.force report) in
  if regen then begin
    let oc = open_out (source_golden "lint_golden.json") in
    output_string oc actual;
    close_out oc
  end
  else
    Alcotest.(check string) "json report pinned" (read_file "lint_golden.json")
      actual

(* Structural sanity of the JSON beyond the golden: one object per
   diagnostic, summary counts embedded. *)
let test_json_shape () =
  let r = Lazy.force report in
  let json = Dr.report_to_json r in
  let count_sub sub =
    let n = String.length sub in
    let rec go i acc =
      if i + n > String.length json then acc
      else if String.equal (String.sub json i n) sub then go (i + n) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one object per diagnostic"
    (List.length r.Dr.diagnostics)
    (count_sub "{\"file\":");
  Alcotest.(check bool) "summary embedded" true
    (contains
       ~sub:(Printf.sprintf "\"errors\": %d, \"warnings\": %d" r.Dr.errors r.Dr.warns)
       json);
  (* messages with quotes/backslashes stay valid JSON *)
  Alcotest.(check string) "escaping" "{\"file\":\"a\\\"b\",\"line\":1,\"severity\":\"error\",\"rule\":\"x\",\"message\":\"tab\\tnl\\nq\\\"\"}"
    (D.to_json
       (D.make ~rule:"x" ~severity:D.Error ~file:"a\"b" ~line:1 "tab\tnl\nq\""))

let test_allowlist_malformed () =
  (* A rule with no target is a hard config error, not a silent skip. *)
  let path = Filename.temp_file "smartlint" ".allow" in
  let oc = open_out path in
  output_string oc "nospace\n";
  close_out oc;
  let result = Smartlint.Allowlist.load path in
  Sys.remove path;
  match result with
  | Ok _ -> Alcotest.fail "malformed allowlist accepted"
  | Error msg ->
    Alcotest.(check bool) "error names the offending line" true
      (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Determinism regression: the property the linter enforces statically  *)
(* must hold dynamically — two same-seed runs are byte-identical.       *)
(* ------------------------------------------------------------------ *)

let render_trace trace =
  S.Trace.entries trace
  |> List.map (fun (e : S.Trace.entry) ->
         Printf.sprintf "%.9f|%s|%s" e.time e.category e.message)
  |> String.concat "\n"

let run_stack seed =
  let trace = S.Trace.create ~capacity:65536 () in
  let c = H.Testbed.icpp2005 ~seed ~trace () in
  let d =
    C.Simdriver.deploy c ~monitor:"dalmatian" ~wizard_host:"dalmatian"
      ~servers:H.Testbed.machine_names
  in
  C.Simdriver.settle ~duration:8.0 d;
  let servers =
    match
      C.Simdriver.request d ~client:"sagit" ~wanted:2
        ~requirement:"host_cpu_bogomips > 4000\n"
    with
    | Ok servers -> String.concat "," servers
    | Error e -> Format.asprintf "error: %a" C.Client.pp_error e
  in
  ( render_trace trace,
    U.Metrics.to_text (C.Simdriver.metrics d),
    C.Simdriver.trace_json d,
    servers )

let test_same_seed_identical () =
  let t1, m1, j1, s1 = run_stack 7 and t2, m2, j2, s2 = run_stack 7 in
  Alcotest.(check bool) "trace non-empty" true (String.length t1 > 0);
  Alcotest.(check bool) "metrics non-empty" true (String.length m1 > 0);
  Alcotest.(check bool) "span export non-empty" true (String.length j1 > 0);
  Alcotest.(check string) "traces byte-identical" t1 t2;
  Alcotest.(check string) "metrics snapshots byte-identical" m1 m2;
  Alcotest.(check string) "span exports byte-identical" j1 j2;
  Alcotest.(check string) "selections identical" s1 s2

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "io-purity" `Quick test_io_purity;
          Alcotest.test_case "determinism" `Quick test_determinism_rule;
          Alcotest.test_case "determinism: span recorder" `Quick
            test_determinism_tracer;
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "unsafe" `Quick test_unsafe;
          Alcotest.test_case "unchecked indexing" `Quick
            test_unchecked_indexing;
          Alcotest.test_case "iface" `Quick test_iface;
          Alcotest.test_case "severity model" `Quick test_severity_model;
          Alcotest.test_case "--only filter" `Quick test_only_filter;
        ] );
      ( "whole-program",
        [
          Alcotest.test_case "effects: laundered sinks" `Quick test_effects;
          Alcotest.test_case "wire registry" `Quick test_wire;
          Alcotest.test_case "determinism: digest + env sinks" `Quick
            test_determinism_new_sinks;
          Alcotest.test_case "bytecode fixtures verify" `Quick
            test_bytecode_rule;
        ] );
      ( "report",
        [
          Alcotest.test_case "golden text" `Quick test_golden_text;
          Alcotest.test_case "golden json" `Quick test_golden_json;
          Alcotest.test_case "json shape" `Quick test_json_shape;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "suppression" `Quick test_allowlist_suppression;
          Alcotest.test_case "unused entry" `Quick test_allowlist_unused;
          Alcotest.test_case "strict mode" `Quick test_strict_mode;
          Alcotest.test_case "malformed entry" `Quick test_allowlist_malformed;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same-seed runs byte-identical" `Quick
            test_same_seed_identical;
        ] );
    ]
