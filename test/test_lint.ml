(* Tier-2: the smartlint analyzer against the lint_fixtures mini-project,
   plus the whole-stack determinism regression the linter exists to guard.

   Tests execute with cwd [_build/default/test]; [..] is the build-tree
   root, which mirrors the source tree, so the same path serves as both
   [root] (sources, dune files, allowlists) and [build_root] (cmts). *)

module D = Smartlint.Diagnostic
module Dr = Smartlint.Driver
module U = Smart_util
module S = Smart_sim
module H = Smart_host
module C = Smart_core

let fixture_config ~allow =
  {
    Dr.root = "..";
    build_root = "..";
    lib_dirs = [ "test/lint_fixtures" ];
    sans_io_dirs = [ "test/lint_fixtures" ];
    proto_dirs = [ "test/lint_fixtures" ];
    unchecked_files = [];
    allow_path = allow;
    only = [];
    skip = [];
  }

let run ?(only = []) ~allow () =
  match Dr.run { (fixture_config ~allow) with only } with
  | Ok r -> r
  | Error e -> Alcotest.failf "smartlint failed: %s" e

(* No allowlist: every planted violation must surface. *)
let report = lazy (run ~allow:"no-such.allow" ())

let find (report : Dr.report) ~rule ~file ~line =
  List.filter
    (fun (d : D.t) ->
      String.equal d.rule rule && String.equal d.file file && d.line = line)
    report.diagnostics

let check_hit ?(severity = D.Error) ~rule ~file ~line () =
  let report = Lazy.force report in
  match find report ~rule ~file ~line with
  | [] ->
    Alcotest.failf "expected %s diagnostic at %s:%d, got none in:\n%s" rule file
      line
      (String.concat "\n" (List.map D.to_string report.diagnostics))
  | d :: _ ->
    Alcotest.(check bool)
      (Printf.sprintf "%s %s:%d severity" rule file line)
      true
      (d.D.severity = severity)

let fx name = "test/lint_fixtures/" ^ name

let test_io_purity () =
  check_hit ~rule:"io-purity" ~file:(fx "fx_io.ml") ~line:3 ();
  check_hit ~rule:"io-purity" ~file:(fx "fx_io.ml") ~line:4 ();
  (* the dune stanza lists unix and fx_io really imports it *)
  check_hit ~rule:"io-purity" ~file:(fx "dune") ~line:1 ()

let test_determinism_rule () =
  check_hit ~rule:"determinism" ~file:(fx "fx_random.ml") ~line:3 ();
  check_hit ~rule:"determinism" ~file:(fx "fx_random.ml") ~line:4 ();
  check_hit ~severity:D.Warn ~rule:"determinism" ~file:(fx "fx_random.ml")
    ~line:6 ()

(* A span recorder is exactly where a wall clock sneaks into sans-IO
   code; the rule must see through the record-path indirection. *)
let test_determinism_tracer () =
  check_hit ~rule:"determinism" ~file:(fx "fx_tracer.ml") ~line:11 ();
  check_hit ~rule:"determinism" ~file:(fx "fx_tracer.ml") ~line:15 ()

let test_poly_compare () =
  check_hit ~rule:"poly-compare" ~file:(fx "fx_compare.ml") ~line:5 ();
  check_hit ~rule:"poly-compare" ~file:(fx "fx_compare.ml") ~line:6 ();
  check_hit ~severity:D.Warn ~rule:"poly-compare" ~file:(fx "fx_compare.ml")
    ~line:7 ();
  (* [x <> None] only inspects the tag: exempt *)
  Alcotest.(check (list string))
    "nullary-constructor comparison exempt" []
    (List.map D.to_string
       (find (Lazy.force report) ~rule:"poly-compare" ~file:(fx "fx_compare.ml")
          ~line:8))

let test_unsafe () =
  check_hit ~rule:"unsafe" ~file:(fx "fx_unsafe.ml") ~line:3 ();
  check_hit ~rule:"unsafe" ~file:(fx "fx_unsafe.ml") ~line:4 ();
  check_hit ~rule:"unsafe" ~file:(fx "fx_unsafe.ml") ~line:6 ()

(* Bigarray/Array unsafe accessors: banned by default, waived only for
   the files the config declares unchecked-safe (in the real tree, the
   bytecode interpreter). *)
let test_unchecked_indexing () =
  check_hit ~rule:"unsafe" ~file:(fx "fx_bigarray.ml") ~line:4 ();
  check_hit ~rule:"unsafe" ~file:(fx "fx_bigarray.ml") ~line:6 ();
  let waived =
    match
      Dr.run
        {
          (fixture_config ~allow:"no-such.allow") with
          unchecked_files = [ fx "fx_bigarray.ml" ];
        }
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "smartlint failed: %s" e
  in
  Alcotest.(check (list string))
    "declared file is exempt" []
    (List.map D.to_string
       (List.filter
          (fun (d : D.t) ->
            String.equal d.rule "unsafe"
            && String.equal d.file (fx "fx_bigarray.ml"))
          waived.Dr.diagnostics))

let test_iface () =
  check_hit ~rule:"iface" ~file:(fx "fx_nomli.ml") ~line:1 ();
  Alcotest.(check (list string))
    "modules with .mli pass" []
    (List.map D.to_string
       (find (Lazy.force report) ~rule:"iface" ~file:(fx "fx_io.ml") ~line:1))

let test_severity_model () =
  let r = Lazy.force report in
  Alcotest.(check bool) "errors counted" true (r.Dr.errors >= 10);
  Alcotest.(check bool) "warns counted" true (r.Dr.warns >= 2);
  Alcotest.(check int) "nothing suppressed without an allowlist" 0 r.Dr.suppressed

let test_only_filter () =
  let r = run ~only:[ "iface" ] ~allow:"no-such.allow" () in
  Alcotest.(check bool) "some iface diagnostics" true (r.Dr.errors > 0);
  List.iter
    (fun (d : D.t) ->
      Alcotest.(check string) "only iface survives the filter" "iface" d.rule)
    r.Dr.diagnostics

let test_allowlist_suppression () =
  let bare = Lazy.force report in
  let allowed = run ~allow:(fx "fixtures.allow") () in
  (* exactly the fx_allowed entry disappears; everything else stays *)
  Alcotest.(check bool)
    "violation present without allowlist" true
    (find bare ~rule:"poly-compare" ~file:(fx "fx_allowed.ml") ~line:3 <> []);
  Alcotest.(check (list string))
    "violation suppressed with allowlist" []
    (List.map D.to_string
       (find allowed ~rule:"poly-compare" ~file:(fx "fx_allowed.ml") ~line:3));
  Alcotest.(check int) "exactly one diagnostic suppressed" 1 allowed.Dr.suppressed;
  Alcotest.(check int) "one entry loaded" 1 allowed.Dr.allow_size;
  Alcotest.(check int) "errors drop by exactly one" (bare.Dr.errors - 1)
    allowed.Dr.errors

let test_allowlist_unused () =
  let r = run ~allow:(fx "unused.allow") () in
  Alcotest.(check int) "stale entry suppresses nothing" 0 r.Dr.suppressed;
  Alcotest.(check bool) "stale entry reported" true
    (List.exists
       (fun (d : D.t) ->
         String.equal d.rule "allowlist" && d.severity = D.Warn)
       r.Dr.diagnostics)

let test_allowlist_malformed () =
  (* A rule with no target is a hard config error, not a silent skip. *)
  let path = Filename.temp_file "smartlint" ".allow" in
  let oc = open_out path in
  output_string oc "nospace\n";
  close_out oc;
  let result = Smartlint.Allowlist.load path in
  Sys.remove path;
  match result with
  | Ok _ -> Alcotest.fail "malformed allowlist accepted"
  | Error msg ->
    Alcotest.(check bool) "error names the offending line" true
      (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Determinism regression: the property the linter enforces statically  *)
(* must hold dynamically — two same-seed runs are byte-identical.       *)
(* ------------------------------------------------------------------ *)

let render_trace trace =
  S.Trace.entries trace
  |> List.map (fun (e : S.Trace.entry) ->
         Printf.sprintf "%.9f|%s|%s" e.time e.category e.message)
  |> String.concat "\n"

let run_stack seed =
  let trace = S.Trace.create ~capacity:65536 () in
  let c = H.Testbed.icpp2005 ~seed ~trace () in
  let d =
    C.Simdriver.deploy c ~monitor:"dalmatian" ~wizard_host:"dalmatian"
      ~servers:H.Testbed.machine_names
  in
  C.Simdriver.settle ~duration:8.0 d;
  let servers =
    match
      C.Simdriver.request d ~client:"sagit" ~wanted:2
        ~requirement:"host_cpu_bogomips > 4000\n"
    with
    | Ok servers -> String.concat "," servers
    | Error e -> Format.asprintf "error: %a" C.Client.pp_error e
  in
  ( render_trace trace,
    U.Metrics.to_text (C.Simdriver.metrics d),
    C.Simdriver.trace_json d,
    servers )

let test_same_seed_identical () =
  let t1, m1, j1, s1 = run_stack 7 and t2, m2, j2, s2 = run_stack 7 in
  Alcotest.(check bool) "trace non-empty" true (String.length t1 > 0);
  Alcotest.(check bool) "metrics non-empty" true (String.length m1 > 0);
  Alcotest.(check bool) "span export non-empty" true (String.length j1 > 0);
  Alcotest.(check string) "traces byte-identical" t1 t2;
  Alcotest.(check string) "metrics snapshots byte-identical" m1 m2;
  Alcotest.(check string) "span exports byte-identical" j1 j2;
  Alcotest.(check string) "selections identical" s1 s2

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "io-purity" `Quick test_io_purity;
          Alcotest.test_case "determinism" `Quick test_determinism_rule;
          Alcotest.test_case "determinism: span recorder" `Quick
            test_determinism_tracer;
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "unsafe" `Quick test_unsafe;
          Alcotest.test_case "unchecked indexing" `Quick
            test_unchecked_indexing;
          Alcotest.test_case "iface" `Quick test_iface;
          Alcotest.test_case "severity model" `Quick test_severity_model;
          Alcotest.test_case "--only filter" `Quick test_only_filter;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "suppression" `Quick test_allowlist_suppression;
          Alcotest.test_case "unused entry" `Quick test_allowlist_unused;
          Alcotest.test_case "malformed entry" `Quick test_allowlist_malformed;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same-seed runs byte-identical" `Quick
            test_same_seed_identical;
        ] );
    ]
