(* A single lint finding.  [file] is always a root-relative source path
   ("lib/core/status_db.ml") so diagnostics are stable across build
   contexts and directly usable as allowlist keys. *)

type severity = Error | Warn

type t = {
  rule : string;      (* rule identifier, e.g. "poly-compare" *)
  severity : severity;
  file : string;
  line : int;
  message : string;
}

let severity_to_string = function Error -> "error" | Warn -> "warn"

let make ~rule ~severity ~file ~line message =
  { rule; severity; file; line; message }

(* Stable report order: file, then line, then rule. *)
let compare_diag a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else String.compare a.rule b.rule

let to_string d =
  Printf.sprintf "%s:%d: %s [%s] %s" d.file d.line
    (severity_to_string d.severity)
    d.rule d.message
