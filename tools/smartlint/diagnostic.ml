(* A single lint finding.  [file] is always a root-relative source path
   ("lib/core/status_db.ml") so diagnostics are stable across build
   contexts and directly usable as allowlist keys. *)

type severity = Error | Warn

type t = {
  rule : string;      (* rule identifier, e.g. "poly-compare" *)
  severity : severity;
  file : string;
  line : int;
  message : string;
}

let severity_to_string = function Error -> "error" | Warn -> "warn"

let make ~rule ~severity ~file ~line message =
  { rule; severity; file; line; message }

(* Stable report order: file, then line, then rule. *)
let compare_diag a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else String.compare a.rule b.rule

let to_string d =
  Printf.sprintf "%s:%d: %s [%s] %s" d.file d.line
    (severity_to_string d.severity)
    d.rule d.message

(* JSON string escaping comes from the shared helper so the lint
   report and the runtime emitters escape identically. *)
let json_escape = Smart_util.Json.escape

(* One diagnostic as a single-line JSON object — the machine-readable
   twin of {!to_string}, consumed by the CI problem matcher. *)
let to_json d =
  Printf.sprintf
    {|{"file":"%s","line":%d,"severity":"%s","rule":"%s","message":"%s"}|}
    (json_escape d.file) d.line
    (severity_to_string d.severity)
    (json_escape d.rule) (json_escape d.message)
