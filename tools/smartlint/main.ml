(* smartlint CLI.

   Run from the repository root after a build (the analyzer reads the
   .cmt typed trees dune leaves under _build/default):

       dune build && dune exec tools/smartlint/main.exe -- --root .

   Exit status is non-zero when any non-allowlisted error remains; warns
   never gate (except unused allowlist entries under --strict).  --json
   replaces the text report with a JSON document on stdout; --json-out
   writes the same document to a file alongside the text report.  See
   ANALYSIS.md for the rule catalogue. *)

let realnet_dir = "lib/realnet"

let default_config root =
  let ( / ) = Filename.concat in
  let lib_dirs =
    match Sys.readdir (root / "lib") with
    | exception Sys_error _ -> []
    | entries ->
      Array.to_list entries
      |> List.filter (fun d -> Sys.is_directory (root / "lib" / d))
      |> List.map (fun d -> "lib" / d)
      |> List.sort String.compare
  in
  {
    Smartlint.Driver.root;
    build_root = root / "_build" / "default";
    lib_dirs;
    sans_io_dirs =
      List.filter (fun d -> not (String.equal d realnet_dir)) lib_dirs;
    proto_dirs = [ "lib/proto" ];
    program_dirs = [ "test/lint_fixtures/programs" ];
    unchecked_files = [ "lib/lang/bytecode.ml" ];
    allow_path = "lint.allow";
    only = [];
    skip = [];
    strict = false;
  }

let split_commas s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun r -> not (String.equal r ""))

let () =
  let root = ref "." in
  let allow = ref None in
  let only = ref [] in
  let skip = ref [] in
  let quiet = ref false in
  let json = ref false in
  let json_out = ref None in
  let strict = ref false in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root (default: .)");
      ( "--allow",
        Arg.String (fun s -> allow := Some s),
        "FILE allowlist file, relative to root (default: lint.allow)" );
      ( "--only",
        Arg.String (fun s -> only := !only @ split_commas s),
        "RULES comma-separated rules to run (default: all of "
        ^ String.concat "," Smartlint.Driver.all_rules
        ^ ")" );
      ( "--skip",
        Arg.String (fun s -> skip := !skip @ split_commas s),
        "RULES comma-separated rules to disable" );
      ("--quiet", Arg.Set quiet, " print only the summary line");
      ("--json", Arg.Set json, " print the report as JSON instead of text");
      ( "--json-out",
        Arg.String (fun s -> json_out := Some s),
        "FILE also write the JSON report to FILE" );
      ( "--strict",
        Arg.Set strict,
        " escalate unused lint.allow entries from warn to error" );
    ]
  in
  Arg.parse spec
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    "smartlint [--root DIR] [--allow FILE] [--only RULES] [--skip RULES] \
     [--strict] [--json] [--json-out FILE]";
  List.iter
    (fun r ->
      if not (List.mem r Smartlint.Driver.all_rules) then begin
        Printf.eprintf "smartlint: unknown rule %S (known: %s)\n" r
          (String.concat ", " Smartlint.Driver.all_rules);
        exit 2
      end)
    (!only @ !skip);
  let config = default_config !root in
  let config =
    {
      config with
      Smartlint.Driver.only = !only;
      skip = !skip;
      strict = !strict;
      allow_path = Option.value ~default:config.Smartlint.Driver.allow_path !allow;
    }
  in
  match Smartlint.Driver.run config with
  | Error msg ->
    Printf.eprintf "smartlint: %s\n" msg;
    exit 2
  | Ok report ->
    (match !json_out with
    | Some path ->
      let oc = open_out path in
      output_string oc (Smartlint.Driver.report_to_json report);
      close_out oc
    | None -> ());
    if !json then print_string (Smartlint.Driver.report_to_json report)
    else
      Smartlint.Driver.print_report
        (if !quiet then { report with diagnostics = [] } else report);
    exit (if report.errors > 0 then 1 else 0)
