(* Typed-tree rule checks.  Every check walks the Typedtree stored in a
   .cmt file (so identifier references are fully resolved paths and every
   expression carries its inferred type) and emits diagnostics keyed to
   the original source line.

   Rule families implemented here:

   - io-purity     sans-IO layers must not touch the real world: no
                   [Unix.*], no channel opening ([open_in]/[open_out],
                   [In_channel]/[Out_channel]).
   - determinism   sans-IO layers must behave identically run-to-run: no
                   [Random.*] (use [Smart_util.Prng]), no wall clock
                   ([Sys.time]), no [Hashtbl.hash], no [Digest.*]
                   (representation-dependent MD5), no [Sys.getenv]/
                   [Sys.argv] (process-ambient input), and (warn) no
                   [Hashtbl.iter]/[fold] whose enclosing definition never
                   sorts, since hash-bucket order then leaks out.
   - poly-compare  the polymorphic comparison operators at non-immediate
                   types need explicit comparators; comparisons against a
                   constant constructor ([x <> None], [l = []]) only look
                   at the tag and are exempt, and boolean operators at
                   [float] are deterministic-but-NaN-hazardous, so warn.
   - unsafe        [Obj.*] and [Marshal.*] are banned everywhere;
                   [assert false] is banned in wire-decode layers where
                   decoders must be total; the bounds-skipping
                   [Bigarray.*.unsafe_*] / [Array.unsafe_*] accessors
                   are banned outside the files the driver declares
                   unchecked-safe (the bytecode interpreter, whose
                   operand indices are pre-validated).

   The interface-coverage rule and the dune-stanza cross-checks live in
   [Project]; they are file-level, not typed-tree-level. *)

type ctx = {
  file : string;   (* root-relative source path, used in diagnostics *)
  sans_io : bool;  (* io-purity + determinism apply *)
  proto : bool;    (* assert-false ban applies *)
  unchecked_ok : bool;  (* unchecked-indexing ban waived for this file *)
}

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* ------------------------------------------------------------------ *)
(* Identifier classification                                           *)
(* ------------------------------------------------------------------ *)

let is_unix_ident name = starts_with ~prefix:"Unix." name

let channel_open_idents =
  [
    "Stdlib.open_in"; "Stdlib.open_in_bin"; "Stdlib.open_in_gen";
    "Stdlib.open_out"; "Stdlib.open_out_bin"; "Stdlib.open_out_gen";
  ]

let is_channel_ident name =
  List.mem name channel_open_idents
  || starts_with ~prefix:"Stdlib.In_channel." name
  || starts_with ~prefix:"Stdlib.Out_channel." name

let is_random_ident name = starts_with ~prefix:"Stdlib.Random." name

let wall_clock_idents = [ "Stdlib.Sys.time"; "Unix.gettimeofday"; "Unix.time" ]

let hash_idents =
  [ "Stdlib.Hashtbl.hash"; "Stdlib.Hashtbl.hash_param"; "Stdlib.Hashtbl.seeded_hash" ]

(* MD5 of a heap value hashes its in-memory representation, which varies
   with sharing, boxing, and compiler version — never stable input for a
   deterministic layer. *)
let is_digest_ident name = starts_with ~prefix:"Stdlib.Digest." name

(* Process-ambient inputs: different on every host/invocation, so a
   sans-IO layer reading them is nondeterministic by construction. *)
let env_idents =
  [ "Stdlib.Sys.getenv"; "Stdlib.Sys.getenv_opt"; "Stdlib.Sys.argv" ]

(* Effect-inference seed classification (see [Effects]): every resolved
   path that makes a sans-IO component nondeterministic or real-world
   dependent, with a short category label for the diagnostic.  The
   direct-reference rules above catch these at their use site; the
   effects pass catches them *transitively*, through helper calls,
   stored closures, and optional-argument defaults. *)
let effect_sink name =
  if is_unix_ident name then Some "real-world IO"
  else if is_channel_ident name then Some "channel IO"
  else if is_random_ident name then Some "stdlib Random state"
  else if List.mem name wall_clock_idents then Some "wall clock"
  else if List.mem name hash_idents then Some "unstable stdlib hash"
  else if is_digest_ident name then Some "representation-dependent digest"
  else if List.mem name env_idents then Some "process environment"
  else None

let is_unsafe_ident name =
  starts_with ~prefix:"Stdlib.Obj." name
  || starts_with ~prefix:"Stdlib.Marshal." name

(* The bounds-skipping accessors ([Bigarray.Array2.unsafe_get],
   [Array.unsafe_set], ...): an out-of-range index is memory corruption,
   not an exception, so their use is confined to files whose indices are
   proven in range some other way. *)
let is_unchecked_index_ident name =
  (starts_with ~prefix:"Stdlib.Bigarray." name
  || starts_with ~prefix:"Stdlib.Array." name)
  &&
  match String.rindex_opt name '.' with
  | Some i ->
    starts_with ~prefix:"unsafe_"
      (String.sub name (i + 1) (String.length name - i - 1))
  | None -> false

(* The polymorphic three-way comparator and the polymorphic boolean
   comparison operators, as their resolved path names. *)
let poly_compare_ident = "Stdlib.compare"

let poly_bool_op_idents =
  [ "Stdlib.="; "Stdlib.<>"; "Stdlib.<"; "Stdlib.>"; "Stdlib.<="; "Stdlib.>=" ]

let hashtbl_iteration_idents = [ "Stdlib.Hashtbl.iter"; "Stdlib.Hashtbl.fold" ]

let sort_idents =
  [
    "Stdlib.List.sort"; "Stdlib.List.stable_sort"; "Stdlib.List.fast_sort";
    "Stdlib.List.sort_uniq"; "Stdlib.Array.sort"; "Stdlib.Array.stable_sort";
    "Stdlib.Array.fast_sort";
  ]

(* ------------------------------------------------------------------ *)
(* Type classification for poly-compare                                *)
(* ------------------------------------------------------------------ *)

(* The comparator idents all have (instantiated) type [t -> t -> _]; the
   first arrow argument is the compared type. *)
let rec compared_type ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | Types.Tpoly (t, _) -> compared_type t
  | _ -> None

type type_class =
  | Immediate          (* unboxed, compared by value: always safe *)
  | Unknown            (* type variable: the use is itself polymorphic *)
  | Float_type
  | Boxed of string    (* display name for the diagnostic *)

let rec classify_type ty =
  match Types.get_desc ty with
  | Types.Tvar _ | Types.Tunivar _ -> Unknown
  | Types.Tpoly (t, _) -> classify_type t
  | Types.Ttuple _ -> Boxed "tuple"
  | Types.Tarrow _ -> Boxed "function"
  | Types.Tconstr (p, _, _) -> (
    match Path.name p with
    | "int" | "bool" | "char" | "unit" -> Immediate
    | "float" | "Stdlib.Float.t" -> Float_type
    | name -> Boxed name)
  | _ -> Boxed "value"

let suggested_comparator ~three_way = function
  | Float_type -> if three_way then "Float.compare" else "Float.equal / Float.compare"
  | Boxed "string" | Boxed "Stdlib.String.t" ->
    if three_way then "String.compare" else "String.equal / String.compare"
  | Boxed "int64" -> "Int64.equal / Int64.compare"
  | Boxed "int32" -> "Int32.equal / Int32.compare"
  | _ -> "an explicit comparator"

(* ------------------------------------------------------------------ *)
(* Collection pass                                                     *)
(* ------------------------------------------------------------------ *)

(* One structure item's worth of facts, gathered in a single walk. *)
type collected = {
  mutable idents : (string * Location.t * Types.type_expr) list;
  (* comparator uses applied to a constant constructor ([x = None]):
     keyed by the operator ident's location *)
  mutable exempt : (string * int) list;  (* (pos_fname, pos_cnum) *)
  mutable asserts_false : Location.t list;
}

let loc_key (loc : Location.t) =
  (loc.Location.loc_start.Lexing.pos_fname, loc.Location.loc_start.Lexing.pos_cnum)

let is_constant_constructor (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_construct (_, cd, []) -> cd.Types.cstr_arity = 0
  | _ -> false

let collect_item (item : Typedtree.structure_item) =
  let acc = { idents = []; exempt = []; asserts_false = [] } in
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (path, _, _) ->
      acc.idents <- (Path.name path, e.Typedtree.exp_loc, e.Typedtree.exp_type) :: acc.idents
    | Typedtree.Texp_apply (fn, args) -> (
      match fn.Typedtree.exp_desc with
      | Typedtree.Texp_ident (path, _, _)
        when List.mem (Path.name path) poly_bool_op_idents
             || String.equal (Path.name path) poly_compare_ident ->
        let nullary_arg =
          List.exists
            (function _, Some a -> is_constant_constructor a | _, None -> false)
            args
        in
        if nullary_arg then acc.exempt <- loc_key fn.Typedtree.exp_loc :: acc.exempt
      | _ -> ())
    | Typedtree.Texp_assert (cond, _) ->
      (match cond.Typedtree.exp_desc with
      | Typedtree.Texp_construct (_, cd, []) when String.equal cd.Types.cstr_name "false" ->
        acc.asserts_false <- e.Typedtree.exp_loc :: acc.asserts_false
      | _ -> ())
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  it.structure_item it item;
  acc

(* ------------------------------------------------------------------ *)
(* Per-item diagnostics                                                *)
(* ------------------------------------------------------------------ *)

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let diag ctx ~rule ~severity ~loc fmt =
  Printf.ksprintf
    (fun message ->
      Diagnostic.make ~rule ~severity ~file:ctx.file ~line:(line_of loc) message)
    fmt

let short_op name =
  (* "Stdlib.<>" -> "<>" for readable messages *)
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let check_ident ctx ~exempt (name, loc, ty) =
  let e = Diagnostic.Error and w = Diagnostic.Warn in
  let io_purity () =
    if not ctx.sans_io then []
    else if is_unix_ident name then
      [ diag ctx ~rule:"io-purity" ~severity:e ~loc
          "reference to %s: sans-IO layers must not touch Unix (move the effect \
           behind the realnet boundary)" name ]
    else if is_channel_ident name then
      [ diag ctx ~rule:"io-purity" ~severity:e ~loc
          "reference to %s: sans-IO layers must not open real channels" name ]
    else []
  in
  let determinism () =
    if not ctx.sans_io then []
    else if is_random_ident name then
      [ diag ctx ~rule:"determinism" ~severity:e ~loc
          "reference to %s: use the deterministic Smart_util.Prng instead of the \
           stdlib Random state" name ]
    else if List.mem name wall_clock_idents then
      [ diag ctx ~rule:"determinism" ~severity:e ~loc
          "reference to %s: sans-IO layers must take time as an input (engine \
           clock or injected closure), never read a real clock" name ]
    else if List.mem name hash_idents then
      [ diag ctx ~rule:"determinism" ~severity:e ~loc
          "reference to %s: stdlib hashing is not stable across runs/versions"
          name ]
    else if is_digest_ident name then
      [ diag ctx ~rule:"determinism" ~severity:e ~loc
          "reference to %s: Digest hashes the in-memory representation, which \
           is not stable across sharing/boxing/compiler versions; hash an \
           explicit serialization instead" name ]
    else if List.mem name env_idents then
      [ diag ctx ~rule:"determinism" ~severity:e ~loc
          "reference to %s: sans-IO layers must take configuration as \
           arguments, never read the process environment" name ]
    else []
  in
  let unsafe () =
    if is_unsafe_ident name then
      [ diag ctx ~rule:"unsafe" ~severity:e ~loc
          "reference to %s: Obj/Marshal break abstraction and wire-compatibility \
           guarantees" name ]
    else if (not ctx.unchecked_ok) && is_unchecked_index_ident name then
      [ diag ctx ~rule:"unsafe" ~severity:e ~loc
          "reference to %s: unchecked indexing is confined to the bytecode \
           interpreter (lib/lang/bytecode.ml), whose operand indices are \
           pre-validated; use the checked accessor here" name ]
    else []
  in
  let poly_compare () =
    let three_way = String.equal name poly_compare_ident in
    let bool_op = List.mem name poly_bool_op_idents in
    if (not three_way) && not bool_op then []
    else if List.mem (loc_key loc) exempt then []
    else
      match Option.map classify_type (compared_type ty) with
      | None | Some Immediate | Some Unknown -> []
      | Some Float_type when not three_way ->
        [ diag ctx ~rule:"poly-compare" ~severity:w ~loc
            "polymorphic %s at type float: deterministic but NaN-hazardous; \
             prefer %s" (short_op name)
            (suggested_comparator ~three_way:false Float_type) ]
      | Some cls ->
        let tyname =
          match cls with Boxed n -> n | Float_type -> "float" | _ -> "?"
        in
        [ diag ctx ~rule:"poly-compare" ~severity:e ~loc
            "polymorphic %s at non-immediate type %s: use %s" (short_op name)
            tyname
            (suggested_comparator ~three_way cls) ]
  in
  io_purity () @ determinism () @ unsafe () @ poly_compare ()

let check_item ctx (item : Typedtree.structure_item) =
  let acc = collect_item item in
  let idents = List.rev acc.idents in
  let per_ident =
    List.concat_map (check_ident ctx ~exempt:acc.exempt) idents
  in
  let asserts =
    if not ctx.proto then []
    else
      List.map
        (fun loc ->
          diag ctx ~rule:"unsafe" ~severity:Diagnostic.Error ~loc
            "assert false on a wire-decode path: decoders must be total and \
             return Error on malformed input")
        acc.asserts_false
  in
  (* Hash-order heuristic: an item that iterates a Hashtbl and never
     sorts anything is at risk of leaking bucket order into its output. *)
  let hash_order =
    if not ctx.sans_io then []
    else if List.exists (fun (n, _, _) -> List.mem n sort_idents) idents then []
    else
      List.filter_map
        (fun (n, loc, _) ->
          if List.mem n hashtbl_iteration_idents then
            Some
              (diag ctx ~rule:"determinism" ~severity:Diagnostic.Warn ~loc
                 "%s with no sort in the same definition: hash-bucket order may \
                  leak into ordered output" (short_op n))
          else None)
        idents
  in
  per_ident @ asserts @ hash_order

let check_structure ctx (str : Typedtree.structure) =
  List.concat_map (check_item ctx) str.Typedtree.str_items
