(* Orchestration: load the allowlist, scan the build tree's cmts, run
   every enabled rule family, apply suppression, and render the report.

   [root] is the source tree, [build_root] the directory where compiled
   artifacts mirror it (dune's _build/default — or the source root itself
   when running from inside _build, as the test suite does). *)

type config = {
  root : string;
  build_root : string;
  lib_dirs : string list;      (* scanned at all: poly-compare, unsafe, iface *)
  sans_io_dirs : string list;  (* subset: io-purity + determinism + effects *)
  proto_dirs : string list;    (* subset: assert-false ban + wire registry *)
  program_dirs : string list;
      (* root-relative dirs of checked-in *.req requirement fixtures the
         bytecode rule compiles and verifies *)
  unchecked_files : string list;
      (* root-relative sources where Bigarray/Array unsafe accessors are
         in contract (the bytecode interpreter) *)
  allow_path : string;         (* allowlist file, relative to [root] *)
  only : string list;          (* when non-empty, run just these rules *)
  skip : string list;          (* rules to disable *)
  strict : bool;               (* unused allowlist entries become errors *)
}

let all_rules =
  [
    "io-purity"; "determinism"; "poly-compare"; "unsafe"; "iface";
    "effects"; "wire"; "bytecode";
  ]

let rule_enabled config rule =
  (match config.only with [] -> true | only -> List.mem rule only)
  && not (List.mem rule config.skip)

type report = {
  diagnostics : Diagnostic.t list;  (* survivors, sorted *)
  errors : int;
  warns : int;
  suppressed : int;
  files_scanned : int;
  allow_size : int;
}

let run config =
  let ( / ) = Filename.concat in
  match Allowlist.load (config.root / config.allow_path) with
  | Error msg -> Error msg
  | Ok allow ->
    let cmts =
      Project.load_cmts ~root:config.root ~build_root:config.build_root
        config.lib_dirs
    in
    let tree_diags =
      List.concat_map
        (fun (c : Project.cmt) ->
          match c.structure with
          | None -> []
          | Some str ->
            let ctx =
              {
                Rules.file = c.source;
                sans_io = List.exists (Project.in_dir c.source) config.sans_io_dirs;
                proto = List.exists (Project.in_dir c.source) config.proto_dirs;
                unchecked_ok =
                  List.exists (String.equal c.source) config.unchecked_files;
              }
            in
            Rules.check_structure ctx str)
        cmts
    in
    let already_flagged =
      List.filter_map
        (fun (d : Diagnostic.t) ->
          if String.equal d.rule "io-purity" then Some d.file else None)
        tree_diags
    in
    (* Whole-program passes.  Effects and the wire checks both consume
       the call graph, so build it once when either is enabled. *)
    let want_effects = rule_enabled config "effects" in
    let want_wire = rule_enabled config "wire" in
    let graph_diags =
      if not (want_effects || want_wire) then []
      else begin
        let graph = Callgraph.build cmts in
        let effects_diags =
          if not want_effects then []
          else
            Effects.check graph ~sans_io:(fun file ->
                List.exists (Project.in_dir file) config.sans_io_dirs)
        in
        let wire_diags =
          if not want_wire then []
          else
            Wirecheck.check ~graph
              (List.filter
                 (fun (c : Project.cmt) ->
                   List.exists (Project.in_dir c.source) config.proto_dirs)
                 cmts)
        in
        effects_diags @ wire_diags
      end
    in
    let bytecode_diags =
      if rule_enabled config "bytecode" then
        Progcheck.check ~root:config.root config.program_dirs
      else []
    in
    let diags =
      tree_diags
      @ Project.iface_check ~root:config.root config.lib_dirs
      @ Project.deps_check ~root:config.root ~cmts config.sans_io_dirs
      @ Project.imports_check ~cmts ~already_flagged config.sans_io_dirs
      @ graph_diags @ bytecode_diags
    in
    let diags =
      List.filter (fun (d : Diagnostic.t) -> rule_enabled config d.rule) diags
    in
    let kept, suppressed =
      List.partition (fun d -> not (Allowlist.suppresses allow d)) diags
    in
    (* Unused allowlist entries warn by default; [strict] escalates them
       to errors so stale exemptions cannot accumulate (the CI mode). *)
    let unused =
      List.map
        (fun (d : Diagnostic.t) ->
          if config.strict then { d with Diagnostic.severity = Diagnostic.Error }
          else d)
        (Allowlist.unused_entries allow)
    in
    let kept = kept @ unused in
    let kept = List.sort Diagnostic.compare_diag kept in
    let count sev =
      List.length
        (List.filter (fun (d : Diagnostic.t) -> d.severity = sev) kept)
    in
    Ok
      {
        diagnostics = kept;
        errors = count Diagnostic.Error;
        warns = count Diagnostic.Warn;
        suppressed = List.length suppressed;
        files_scanned = List.length cmts;
        allow_size = Allowlist.size allow;
      }

let print_report ?(out = stdout) report =
  List.iter
    (fun d -> output_string out (Diagnostic.to_string d ^ "\n"))
    report.diagnostics;
  Printf.fprintf out
    "smartlint: %d file%s scanned, %d error%s, %d warning%s, %d suppressed by \
     allowlist (%d entr%s)\n"
    report.files_scanned
    (if report.files_scanned = 1 then "" else "s")
    report.errors
    (if report.errors = 1 then "" else "s")
    report.warns
    (if report.warns = 1 then "" else "s")
    report.suppressed report.allow_size
    (if report.allow_size = 1 then "y" else "ies")

(* The whole report as one JSON document: a summary object plus one
   diagnostic object per line, stable in the same order as the text
   report (file, line, rule).  CI uploads this as an artifact and the
   problem matcher consumes the per-line objects. *)
let report_to_json report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"summary\": {\"files_scanned\": %d, \"errors\": %d, \"warnings\": \
        %d, \"suppressed\": %d, \"allow_entries\": %d},\n"
       report.files_scanned report.errors report.warns report.suppressed
       report.allow_size);
  Buffer.add_string buf "  \"diagnostics\": [";
  List.iteri
    (fun i d ->
      Buffer.add_string buf (if i = 0 then "\n    " else ",\n    ");
      Buffer.add_string buf (Diagnostic.to_json d))
    report.diagnostics;
  Buffer.add_string buf
    (if report.diagnostics = [] then "]\n}\n" else "\n  ]\n}\n");
  Buffer.contents buf
