(* The checked-in exception list (lint.allow).  One entry per line:

       <rule> <file>[:<line>] <justification...>

   Blank lines and lines starting with '#' are comments.  An entry
   suppresses diagnostics of exactly that rule in exactly that file (and,
   when a line number is given, exactly that line).  Every entry is
   expected to suppress something: entries that matched nothing during a
   run are reported so the list cannot silently rot. *)

type entry = {
  rule : string;
  file : string;
  line : int option;        (* None = any line in [file] *)
  justification : string;
  source_line : int;        (* position in the allow file, for reporting *)
  mutable used : bool;
}

type t = { path : string; entries : entry list }

let empty path = { path; entries = [] }

let parse_entry ~source_line text =
  match String.index_opt text ' ' with
  | None -> Error "expected: <rule> <file>[:<line>] <justification>"
  | Some i ->
    let rule = String.sub text 0 i in
    let rest = String.trim (String.sub text (i + 1) (String.length text - i - 1)) in
    let target, justification =
      match String.index_opt rest ' ' with
      | None -> (rest, "")
      | Some j ->
        ( String.sub rest 0 j,
          String.trim (String.sub rest (j + 1) (String.length rest - j - 1)) )
    in
    if String.equal target "" then Error "missing file target"
    else
      let file, line =
        match String.rindex_opt target ':' with
        | None -> (target, None)
        | Some k -> (
          let tail = String.sub target (k + 1) (String.length target - k - 1) in
          match int_of_string_opt tail with
          | Some n -> (String.sub target 0 k, Some n)
          | None -> (target, None))
      in
      Ok { rule; file; line; justification; source_line; used = false }

(* Load [path]; a missing file is an empty allowlist, a malformed line is
   a hard error (the gate must not silently ignore its own config). *)
let load path =
  if not (Sys.file_exists path) then Ok (empty path)
  else begin
    let ic = open_in path in
    let rec read n acc =
      match input_line ic with
      | exception End_of_file -> Ok (List.rev acc)
      | line ->
        let text = String.trim line in
        if String.equal text "" || text.[0] = '#' then read (n + 1) acc
        else (
          match parse_entry ~source_line:n text with
          | Ok e -> read (n + 1) (e :: acc)
          | Error msg ->
            Error (Printf.sprintf "%s:%d: malformed allowlist entry (%s)" path n msg))
    in
    let result = read 1 [] in
    close_in ic;
    match result with
    | Ok entries -> Ok { path; entries }
    | Error _ as e -> e
  end

let size t = List.length t.entries

(* Does some entry cover [d]?  Marks every covering entry as used. *)
let suppresses t (d : Diagnostic.t) =
  List.fold_left
    (fun hit e ->
      if
        String.equal e.rule d.Diagnostic.rule
        && String.equal e.file d.Diagnostic.file
        && match e.line with None -> true | Some l -> l = d.Diagnostic.line
      then (
        e.used <- true;
        true)
      else hit)
    false t.entries

(* Entries that suppressed nothing this run, as warn diagnostics against
   the allow file itself. *)
let unused_entries t =
  List.filter_map
    (fun e ->
      if e.used then None
      else
        Some
          (Diagnostic.make ~rule:"allowlist" ~severity:Diagnostic.Warn
             ~file:t.path ~line:e.source_line
             (Printf.sprintf "entry \"%s %s%s\" suppressed nothing" e.rule e.file
                (match e.line with None -> "" | Some l -> ":" ^ string_of_int l))))
    t.entries
