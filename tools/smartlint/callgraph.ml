(* Whole-program call graph over the scanned typed trees.

   Nodes are top-level value bindings ([let f ... = ...] directly inside
   a structure), keyed by (module name, value name).  The module name is
   the capitalized source basename, which is also how cross-module
   references print after normalization: dune's module wrapping makes a
   reference to lib/proto/frame.ml resolve as "Smart_proto__Frame.encode"
   (or "Smart_proto.Frame.encode" through the alias module), and taking
   the last "__"-separated piece of the last module component recovers
   the bare "Frame" in both spellings.  The repo enforces unique module
   basenames across scanned dirs (dune would reject the ambiguity), so
   the bare name is a sound key.

   Every node carries the raw resolved path of each identifier its body
   references, with the source line of the reference — optional-argument
   defaults and [let]-bound function values included, since the iterator
   walks the whole binding.  Effect inference (see [Effects]) consumes
   both forms: raw paths to spot sinks, resolved (module, value) pairs
   for the transitive edges. *)

type node = {
  modname : string;          (* "Frame" *)
  name : string;             (* "encode" *)
  file : string;             (* root-relative source of the definition *)
  line : int;                (* line of the binding *)
  refs : (string * int) list;
      (* (raw resolved path, line of the reference), in source order *)
}

type t = {
  nodes : node list;  (* sorted by (file, line) for deterministic output *)
  index : (string * string, node) Hashtbl.t;
}

let module_name_of_source source =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename source))

(* "Smart_proto__Frame.encode" / "Smart_proto.Frame.encode" ->
   ("Frame", "encode"); "hidden_now" -> (current module, "hidden_now").
   Paths with no module part are local references: either to another
   top-level binding of the same module (an edge) or to a function
   parameter / local let (dropped later when the index misses). *)
let resolve_ref ~current path =
  match String.split_on_char '.' path with
  | [] -> (current, path)
  | [ single ] -> (current, single)
  | parts ->
    let rec split_last = function
      | [ last ] -> ([], last)
      | x :: rest ->
        let init, last = split_last rest in
        (x :: init, last)
      | [] -> assert false
    in
    let modules, value = split_last parts in
    let last_module = List.nth modules (List.length modules - 1) in
    (* strip the "Lib__" wrapping prefix: keep what follows the last
       "__", leaving single underscores ("Fx_chain_util") intact *)
    let bare =
      let n = String.length last_module in
      let rec last_dunder i best =
        if i + 1 >= n then best
        else if last_module.[i] = '_' && last_module.[i + 1] = '_' then
          last_dunder (i + 2) (Some (i + 2))
        else last_dunder (i + 1) best
      in
      match last_dunder 0 None with
      | Some start when start < n -> String.sub last_module start (n - start)
      | _ -> last_module
    in
    (bare, value)

let collect_refs expr_or_binding =
  let refs = ref [] in
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (path, _, _) ->
      refs :=
        (Path.name path, e.Typedtree.exp_loc.Location.loc_start.Lexing.pos_lnum)
        :: !refs
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  it.value_binding it expr_or_binding;
  List.rev !refs

let nodes_of_cmt (c : Project.cmt) =
  match c.structure with
  | None -> []
  | Some str ->
    let modname = module_name_of_source c.source in
    List.concat_map
      (fun (item : Typedtree.structure_item) ->
        match item.Typedtree.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
          List.filter_map
            (fun (vb : Typedtree.value_binding) ->
              match vb.Typedtree.vb_pat.Typedtree.pat_desc with
              | Typedtree.Tpat_var (id, _) ->
                Some
                  {
                    modname;
                    name = Ident.name id;
                    file = c.source;
                    line =
                      vb.Typedtree.vb_loc.Location.loc_start.Lexing.pos_lnum;
                    refs = collect_refs vb;
                  }
              | _ -> None)
            vbs
        | _ -> [])
      str.Typedtree.str_items

let build cmts =
  let nodes = List.concat_map nodes_of_cmt cmts in
  let index = Hashtbl.create (List.length nodes) in
  (* later bindings shadow earlier ones of the same name, matching OCaml
     scoping for references that follow both *)
  List.iter (fun n -> Hashtbl.replace index (n.modname, n.name) n) nodes;
  { nodes; index }

let find t key = Hashtbl.find_opt t.index key

(* Internal callees of [n]: references that resolve to a node of the
   graph, with the line of the referencing site.  Self-edges are kept
   (recursion is harmless to the BFS). *)
let callees t (n : node) =
  List.filter_map
    (fun (path, line) ->
      let key = resolve_ref ~current:n.modname path in
      match find t key with
      | Some callee when not (callee.modname = n.modname && callee.name = n.name)
        -> Some (callee, line)
      | _ -> None)
    n.refs
