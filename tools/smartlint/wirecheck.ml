(* Wire-registry reconstruction and collision checking (rule: wire).

   The protocol layer spreads its registry across modules: frame payload
   codes and their traced (+16) and CRC (+32) variant ranges in [Frame],
   wizard request option bits and the reply's degraded flag sharing a
   u16 with the server count in [Wizard_msg], magics and flag bits in
   [Fed_msg], the count cap in [Ports].  A collision survives the type
   checker — two constructors encoding to the same byte round-trip as
   each other — so this pass re-derives the registry from the typed
   trees and checks it wholesale:

   - a code table (a function mapping nullary constructors to int
     literals, e.g. [Frame.type_code]) must be injective;
   - with [traced_code_offset] t and [crc_code_offset] c in scope, every
     base code must fit below t (the traced range starts there), c must
     be a power of two used as a flag bit, and the traced range must end
     before c (2t <= c) so base, traced, CRC, and traced+CRC ranges
     stay disjoint;
   - option-bit tables ([option_code]) must not collide with the
     module's [ctx_flag] bit;
   - a [degraded_flag] sharing its word with a count capped by
     [Ports.max_reply_servers] must sit strictly above the cap;
   - frame magics ([*_magic] string constants) must be unique across the
     scanned modules.

   Everything is extracted structurally from [Tstr_value] bindings; a
   module that spells a constant some other way is simply out of scope
   (soundness over completeness — the checker exists to catch the
   registry drifting, not to model OCaml). *)

type const = { cmodule : string; cname : string; cline : int }

type extracted = {
  ints : (string * (int * const)) list;    (* name -> value, def site *)
  strings : (string * (string * const)) list;
  tables : (const * (string * int * int) list) list;
      (* code table: def site, [(constructor, code, line of the arm)] *)
}

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* Constant int/string literal, looking through one level of parens. *)
let rec literal (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_constant (Asttypes.Const_int n) -> Some (`Int n)
  | Typedtree.Texp_constant (Asttypes.Const_string (s, _, _)) ->
    Some (`String s)
  | Typedtree.Texp_open (_, inner) -> literal inner
  | _ -> None

(* A code table body: [function Sys_db -> 1 | Net_db -> 2 | ...].  Every
   case must be a nullary constructor pattern with an int-literal body,
   else the binding is not a table. *)
let table_cases (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function { cases; _ } ->
    let arm (case : Typedtree.value Typedtree.case) =
      match (case.Typedtree.c_lhs.Typedtree.pat_desc, case.Typedtree.c_guard) with
      | Typedtree.Tpat_construct (lid, _, [], _), None -> (
        match literal case.Typedtree.c_rhs with
        | Some (`Int code) ->
          Some
            ( Longident.last lid.Asttypes.txt,
              code,
              line_of case.Typedtree.c_lhs.Typedtree.pat_loc )
        | _ -> None)
      | _ -> None
    in
    let arms = List.filter_map arm cases in
    if List.length arms = List.length cases && List.length arms >= 2 then
      Some arms
    else None
  | _ -> None

let extract_cmt (c : Project.cmt) =
  match c.structure with
  | None -> { ints = []; strings = []; tables = [] }
  | Some str ->
    let cmodule = Callgraph.module_name_of_source c.source in
    let ints = ref [] and strings = ref [] and tables = ref [] in
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.Typedtree.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              match vb.Typedtree.vb_pat.Typedtree.pat_desc with
              | Typedtree.Tpat_var (id, _) -> (
                let cname = Ident.name id in
                let site =
                  { cmodule; cname; cline = line_of vb.Typedtree.vb_loc }
                in
                match literal vb.Typedtree.vb_expr with
                | Some (`Int n) -> ints := (cname, (n, site)) :: !ints
                | Some (`String s) -> strings := (cname, (s, site)) :: !strings
                | None -> (
                  match table_cases vb.Typedtree.vb_expr with
                  | Some arms -> tables := (site, arms) :: !tables
                  | None -> ()))
              | _ -> ())
            vbs
        | _ -> ())
      str.Typedtree.str_items;
    { ints = List.rev !ints; strings = List.rev !strings; tables = List.rev !tables }

let err ~file ~line fmt =
  Printf.ksprintf
    (fun message ->
      Diagnostic.make ~rule:"wire" ~severity:Diagnostic.Error ~file ~line message)
    fmt

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* Per-module checks over one extraction, [file] being its source. *)
let check_module ~file ~graph ~all ex =
  let find name = List.assoc_opt name ex.ints in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* 1. every code table injective *)
  List.iter
    (fun (site, arms) ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (ctor, code, line) ->
          match Hashtbl.find_opt seen code with
          | Some first_ctor ->
            add
              (err ~file ~line
                 "%s.%s: payload code %d assigned to both %s and %s"
                 site.cmodule site.cname code first_ctor ctor)
          | None -> Hashtbl.replace seen code ctor)
        arms)
    ex.tables;
  (* 2. variant-range disjointness, when the module declares offsets *)
  (match (find "traced_code_offset", find "crc_code_offset") with
  | Some (t, tsite), Some (c, csite) ->
    if not (is_power_of_two c) then
      add
        (err ~file ~line:csite.cline
           "crc_code_offset %d is not a power of two: it must be a flag bit \
            disjoint from every code below it"
           c);
    if 2 * t > c then
      add
        (err ~file ~line:tsite.cline
           "traced range [%d, %d) overlaps the CRC bit %d: need 2 * \
            traced_code_offset <= crc_code_offset"
           t (2 * t) c);
    (* only the frame registry itself ([type_code] by convention) lives
       in the offset-partitioned space; other tables in the module
       (option bits, ...) have their own checks *)
    List.iter
      (fun (site, arms) ->
        if String.equal site.cname "type_code" then
          List.iter
            (fun (ctor, code, line) ->
              if code <= 0 || code >= t then
                add
                  (err ~file ~line
                     "%s.%s: base code %d for %s escapes the base range [1, \
                      %d) (traced variants start at traced_code_offset %d)"
                     site.cmodule site.cname code ctor t t))
            arms)
      ex.tables
  | _ -> ());
  (* 3. option bits vs the trace-context flag bit *)
  (match find "ctx_flag" with
  | Some (flag, _) ->
    List.iter
      (fun (site, arms) ->
        if String.equal site.cname "option_code" then
          List.iter
            (fun (ctor, code, line) ->
              if code land flag <> 0 then
                add
                  (err ~file ~line
                     "%s.%s: option code %d for %s collides with the ctx_flag \
                      bit %d packed into the same byte"
                     site.cmodule site.cname code ctor flag))
            arms)
      ex.tables
  | None -> ());
  (* 4. degraded flag vs the count sharing its word.  Only meaningful
     where the module actually packs a [max_reply_servers]-capped count
     into that word — detected by the module referencing the cap; the
     cap's value is resolved from whichever scanned module defines it. *)
  (match find "degraded_flag" with
  | Some (flag, fsite) ->
    let references_cap =
      List.exists
        (fun (n : Callgraph.node) ->
          String.equal n.Callgraph.file file
          && List.exists
               (fun (path, _) ->
                 String.ends_with ~suffix:".max_reply_servers" path)
               n.Callgraph.refs)
        graph.Callgraph.nodes
    in
    if references_cap then begin
      match
        List.find_map
          (fun (_, ex') -> List.assoc_opt "max_reply_servers" ex'.ints)
          all
      with
      | Some (cap, _) ->
        if flag <= cap then
          add
            (err ~file ~line:fsite.cline
               "degraded_flag %d is not above max_reply_servers %d: the flag \
                must use a spare bit of the count word"
               flag cap)
      | None -> ()
    end
  | None -> ());
  List.rev !diags

(* The whole pass over the proto-dir cmts.  [graph] is the call graph of
   the full scan (used to see which module references the reply cap);
   [cmts] are the proto-dir units whose registries are reconstructed. *)
let check ~graph cmts =
  let all =
    List.map (fun (c : Project.cmt) -> (c.Project.source, extract_cmt c)) cmts
  in
  let per_module =
    List.concat_map (fun (file, ex) -> check_module ~file ~graph ~all ex) all
  in
  (* 5. frame magics unique across modules *)
  let magics =
    List.concat_map
      (fun (file, ex) ->
        List.filter_map
          (fun (name, (v, site)) ->
            if String.ends_with ~suffix:"_magic" name then
              Some (file, name, v, site)
            else None)
          ex.strings)
      all
  in
  let seen = Hashtbl.create 8 in
  let magic_dups =
    List.filter_map
      (fun (file, name, v, site) ->
        match Hashtbl.find_opt seen v with
        | Some (_, first_name, first_site) ->
          Some
            (err ~file ~line:site.cline
               "magic %S assigned to both %s.%s and %s.%s: the decoder cannot \
                tell the two apart on the shared port"
               v first_site.cmodule first_name site.cmodule name)
        | None ->
          Hashtbl.replace seen v (file, name, site);
          None)
      magics
  in
  per_module @ magic_dups
