(* Whole-program effect inference (rule: effects).

   The per-file determinism and io-purity rules flag a sink *where it
   appears*; this pass flags the sans-IO bindings that reach one
   *indirectly* — through a helper call, a [let]-bound function value,
   or an optional-argument default — and prints the full call chain so
   the root cause is one read away:

       fx_chain.ml:12: error [effects] Fx_chain.entry reaches a wall
       clock: Fx_chain.entry -> Fx_chain_util.hidden_now ->
       Stdlib.Sys.time

   Seeds are the sink references of [Rules.effect_sink] (wall clocks,
   stdlib Random, Hashtbl.hash, Digest, Unix, channel IO, environment
   reads).  Effects propagate backwards over the [Callgraph] edges; a
   binding whose own body references the sink directly is *not*
   re-reported here — the direct rules already own that line — so every
   effects diagnostic names a chain of at least two hops before the
   sink.

   The BFS is per entry binding, breadth-first over callees in source
   order, so the reported chain is a shortest one and deterministic. *)

type finding = {
  entry : Callgraph.node;
  chain : string list;  (* "Mod.value" hops, entry first, sink last *)
  category : string;    (* [Rules.effect_sink] label *)
  line : int;           (* line of the first hop's reference in [entry] *)
}

let node_label (n : Callgraph.node) = n.Callgraph.modname ^ "." ^ n.Callgraph.name

(* First sink referenced directly by [n]'s body, if any. *)
let direct_sink (n : Callgraph.node) =
  List.find_map
    (fun (path, _) ->
      Option.map (fun cat -> (path, cat)) (Rules.effect_sink path))
    n.Callgraph.refs

(* Shortest call chain from [entry] to any node with a direct sink,
   excluding the zero-hop case (entry itself referencing the sink). *)
let find_chain graph entry =
  let seen = Hashtbl.create 16 in
  let key (n : Callgraph.node) = (n.Callgraph.modname, n.Callgraph.name) in
  Hashtbl.replace seen (key entry) ();
  (* queue items: (node, reversed chain of hops so far, line of first hop) *)
  let q = Queue.create () in
  List.iter
    (fun (callee, line) ->
      if not (Hashtbl.mem seen (key callee)) then begin
        Hashtbl.replace seen (key callee) ();
        Queue.add (callee, [ node_label callee ], line) q
      end)
    (Callgraph.callees graph entry);
  let rec bfs () =
    if Queue.is_empty q then None
    else
      let n, rev_chain, line = Queue.pop q in
      match direct_sink n with
      | Some (sink_path, category) ->
        Some
          {
            entry;
            chain =
              (node_label entry :: List.rev rev_chain) @ [ sink_path ];
            category;
            line;
          }
      | None ->
        List.iter
          (fun (callee, _) ->
            if not (Hashtbl.mem seen (key callee)) then begin
              Hashtbl.replace seen (key callee) ();
              Queue.add (callee, node_label callee :: rev_chain, line) q
            end)
          (Callgraph.callees graph n);
        bfs ()
  in
  bfs ()

(* Report every sans-IO binding reaching a sink only transitively.
   [sans_io] decides whether a node's defining file is in scope. *)
let check graph ~sans_io =
  List.filter_map
    (fun (n : Callgraph.node) ->
      if not (sans_io n.Callgraph.file) then None
      else if Option.is_some (direct_sink n) then None
      else
        match find_chain graph n with
        | None -> None
        | Some f ->
          Some
            (Diagnostic.make ~rule:"effects" ~severity:Diagnostic.Error
               ~file:n.Callgraph.file ~line:f.line
               (Printf.sprintf "%s reaches a %s through its calls: %s"
                  (node_label n) f.category
                  (String.concat " -> " f.chain))))
    graph.Callgraph.nodes
