(* Project-level checks: locating .cmt files under the build tree,
   interface coverage of the source tree, and cross-checking dune
   [libraries] stanzas against what the typed trees actually import. *)

let ( / ) = Filename.concat

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* Is [file] under directory [dir] (both root-relative)? *)
let in_dir file dir = starts_with ~prefix:(dir ^ "/") file

(* ------------------------------------------------------------------ *)
(* cmt discovery                                                       *)
(* ------------------------------------------------------------------ *)

(* Recursively collect every *.cmt under [path] (dune keeps them in
   hidden .objs directories, so the walk must descend into dotfiles). *)
let rec find_cmts path =
  match Sys.is_directory path with
  | exception Sys_error _ -> []
  | false -> if Filename.check_suffix path ".cmt" then [ path ] else []
  | true ->
    Sys.readdir path |> Array.to_list
    |> List.concat_map (fun entry -> find_cmts (path / entry))

type cmt = {
  source : string;  (* root-relative source path *)
  structure : Typedtree.structure option;
  imports : string list;  (* module names this unit references *)
}

(* Read one cmt; [None] when it does not correspond to a real source file
   (dune-generated alias modules and the like). *)
let read_cmt ~root path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | infos -> (
    match infos.Cmt_format.cmt_sourcefile with
    | None -> None
    | Some source ->
      if not (Sys.file_exists (root / source)) then None
      else
        let structure =
          match infos.Cmt_format.cmt_annots with
          | Cmt_format.Implementation str -> Some str
          | _ -> None
        in
        Some { source; structure; imports = List.map fst infos.Cmt_format.cmt_imports })

(* All implementation cmts for [dirs], deduplicated by source file. *)
let load_cmts ~root ~build_root dirs =
  let seen = Hashtbl.create 64 in
  List.concat_map (fun dir -> find_cmts (build_root / dir)) dirs
  |> List.filter_map (fun path ->
         match read_cmt ~root path with
         | Some cmt when not (Hashtbl.mem seen cmt.source) ->
           Hashtbl.add seen cmt.source ();
           Some cmt
         | _ -> None)
  |> List.sort (fun a b -> String.compare a.source b.source)

(* ------------------------------------------------------------------ *)
(* Interface coverage (rule: iface)                                    *)
(* ------------------------------------------------------------------ *)

(* Every .ml directly inside a scanned directory must ship a sibling
   .mli: the interface is both documentation and the seam that keeps
   implementation details from leaking across layers. *)
let iface_check ~root dirs =
  List.concat_map
    (fun dir ->
      match Sys.readdir (root / dir) with
      | exception Sys_error _ -> []
      | entries ->
        Array.to_list entries |> List.sort String.compare
        |> List.filter_map (fun entry ->
               if
                 Filename.check_suffix entry ".ml"
                 && not (Sys.file_exists (root / dir / (entry ^ "i")))
               then
                 Some
                   (Diagnostic.make ~rule:"iface" ~severity:Diagnostic.Error
                      ~file:(dir / entry) ~line:1
                      (Printf.sprintf
                         "module has no interface: add %s.mli (every lib module \
                          ships one)"
                         (Filename.remove_extension entry)))
               else None))
    dirs

(* ------------------------------------------------------------------ *)
(* dune [libraries] cross-check (rule: io-purity)                      *)
(* ------------------------------------------------------------------ *)

(* Minimal tokenizer for a dune file: atoms and parens.  Enough to pull
   the [(libraries ...)] field out of a [(library ...)] stanza. *)
let dune_tokens text =
  let n = String.length text in
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  let i = ref 0 in
  while !i < n do
    (match text.[!i] with
    | '(' | ')' ->
      flush ();
      tokens := String.make 1 text.[!i] :: !tokens
    | ' ' | '\t' | '\n' | '\r' -> flush ()
    | ';' ->
      (* line comment *)
      flush ();
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !tokens

(* The atoms of the first [(libraries ...)] field, at any nesting. *)
let dune_libraries ~root dir =
  let path = root / dir / "dune" in
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let rec after_field = function
      | "(" :: "libraries" :: rest -> Some rest
      | _ :: rest -> after_field rest
      | [] -> None
    in
    match after_field (dune_tokens text) with
    | None -> []
    | Some rest ->
      let rec atoms depth acc = function
        | [] -> List.rev acc
        | "(" :: rest -> atoms (depth + 1) acc rest
        | ")" :: rest -> if depth = 0 then List.rev acc else atoms (depth - 1) acc rest
        | atom :: rest -> atoms depth (atom :: acc) rest
      in
      atoms 0 [] rest
  end

(* Library name -> the top-level module a unit would import if it really
   used that library. *)
let io_library_module = function
  | "unix" -> Some "Unix"
  | "threads" | "threads.posix" -> Some "Thread"
  | "smart_realnet" -> Some "Smart_realnet"
  | _ -> None

(* A sans-IO directory's dune stanza must not name an IO-bearing library
   at all; the message distinguishes a live violation (some module in the
   directory imports it, so the code-level rule will also fire) from a
   stale dep (nothing imports it — the stanza itself is the bug). *)
let deps_check ~root ~cmts sans_io_dirs =
  List.concat_map
    (fun dir ->
      let libs = dune_libraries ~root dir in
      List.filter_map
        (fun lib ->
          match io_library_module lib with
          | None -> None
          | Some modname ->
            let imported =
              List.exists
                (fun (c : cmt) ->
                  in_dir c.source dir
                  && List.exists (String.equal modname) c.imports)
                cmts
            in
            Some
              (Diagnostic.make ~rule:"io-purity" ~severity:Diagnostic.Error
                 ~file:(dir / "dune") ~line:1
                 (if imported then
                    Printf.sprintf
                      "sans-IO library depends on %s (and some module imports \
                       %s): move the IO behind lib/realnet"
                      lib modname
                  else
                    Printf.sprintf
                      "stale dune dep: sans-IO library lists %s but no module \
                       imports %s; drop it from (libraries)"
                      lib modname)))
        libs)
    sans_io_dirs

(* Import-level fallback for files whose typed tree never mentions an
   IO identifier but whose interface still drags one in (e.g. a type
   alias to [Unix.file_descr]).  Only fires when the expression-level
   io-purity check found nothing in that file, so a real use is reported
   once, at its line. *)
let imports_check ~cmts ~already_flagged sans_io_dirs =
  List.filter_map
    (fun (c : cmt) ->
      if not (List.exists (in_dir c.source) sans_io_dirs) then None
      else if List.mem c.source already_flagged then None
      else
        let bad =
          List.filter
            (fun m -> String.equal m "Unix" || starts_with ~prefix:"Smart_realnet" m)
            c.imports
        in
        match bad with
        | [] -> None
        | bad ->
          Some
            (Diagnostic.make ~rule:"io-purity" ~severity:Diagnostic.Error
               ~file:c.source ~line:1
               (Printf.sprintf
                  "sans-IO module imports %s (type-level dependency): layering \
                   violation"
                  (String.concat ", " bad))))
    cmts
