(* Bytecode verification of checked-in requirement programs (rule:
   bytecode).

   The repo pins a set of requirement fixtures — [.req] files under the
   configured program directories; this pass compiles each one and runs
   the full {!Smart_lang.Bytecode.verify} dataflow pass over the result
   — init-before-use, operand bounds on every path, NUMCHK-elision
   soundness, fault-path coverage, sweep-plan preconditions.  The
   interpreter's [unsafe_get] exemption in the unsafe rule rests on
   these judgments, so a verifier regression (or a compiler change that
   starts emitting unverifiable code) fails the lint gate, not a
   production wizard.

   A fixture that no longer parses is an error too: a stale fixture
   checks nothing. *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let req_files ~root dirs =
  let ( / ) = Filename.concat in
  List.concat_map
    (fun dir ->
      match Sys.readdir (root / dir) with
      | exception Sys_error _ -> []
      | entries ->
        Array.to_list entries |> List.sort String.compare
        |> List.filter_map (fun entry ->
               if Filename.check_suffix entry ".req" then Some (dir / entry)
               else None))
    dirs

let err ~file ~line fmt =
  Printf.ksprintf
    (fun message ->
      Diagnostic.make ~rule:"bytecode" ~severity:Diagnostic.Error ~file ~line
        message)
    fmt

let check ~root dirs =
  let ( / ) = Filename.concat in
  List.filter_map
    (fun file ->
      let text = read_file (root / file) in
      match Smart_lang.Requirement.compile text with
      | Error e ->
        Some
          (err ~file ~line:e.Smart_lang.Requirement.line
             "fixture no longer parses (%s): it verifies nothing"
             e.Smart_lang.Requirement.message)
      | Ok ast -> (
        let prog = Smart_lang.Compile.program ast in
        match Smart_lang.Bytecode.verify prog with
        | Ok () -> None
        | Error ve ->
          let line =
            if ve.Smart_lang.Bytecode.stmt >= 0
               && ve.Smart_lang.Bytecode.stmt
                  < Smart_lang.Bytecode.nstmts prog
            then prog.Smart_lang.Bytecode.stmt_line.(ve.Smart_lang.Bytecode.stmt)
            else 1
          in
          Some
            (err ~file ~line "compiled bytecode failed verification: %s"
               (Smart_lang.Bytecode.verify_error_to_string ve))))
    (req_files ~root dirs)
