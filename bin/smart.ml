(* `smart` — command-line front end for the Smart TCP socket daemons.

     smart probe    --host NAME --ip IP --monitor HOST [--interval S]
     smart monitor  --host NAME --wizard HOST [--targets a,b] [--seclog F]
     smart wizard   --host NAME [--distributed --transmitters a,b]
     smart query    --wizard HOST --servers N (--expr E | --file F) [--connect]

   All daemons run in the foreground until interrupted.  Host names are
   resolved by the system resolver (run one component per machine, as in
   Fig 3.1); the single-machine integration tests use the library's
   address book directly instead. *)

let setup_logs level =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let book () = Smart_realnet.Addr_book.create ()

(* ------------------------------------------------------------------ *)
(* probe                                                                *)
(* ------------------------------------------------------------------ *)

let run_probe host ip monitor interval =
  setup_logs (Some Logs.Info);
  let daemon =
    Smart_realnet.Probe_daemon.create (book ())
      {
        Smart_realnet.Probe_daemon.host;
        ip;
        monitor_host = monitor;
        interval;
        proc = Smart_realnet.Proc_reader.default;
        iface = None;
      }
  in
  Smart_realnet.Probe_daemon.start daemon;
  Logs.app (fun m ->
      m "probe %s reporting to %s every %.1f s (ctrl-c to stop)" host monitor
        interval);
  let rec wait () =
    Thread.delay 60.0;
    Logs.info (fun m ->
        m "reports sent: %d" (Smart_realnet.Probe_daemon.reports_sent daemon));
    wait ()
  in
  wait ()

(* ------------------------------------------------------------------ *)
(* monitor                                                              *)
(* ------------------------------------------------------------------ *)

let split_commas s =
  if s = "" then []
  else String.split_on_char ',' s |> List.map String.trim

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

let run_monitor host wizard targets seclog interval distributed =
  setup_logs (Some Logs.Info);
  let daemon =
    Smart_realnet.Monitor_daemon.create (book ())
      {
        Smart_realnet.Monitor_daemon.host;
        wizard_host = wizard;
        mode =
          (if distributed then Smart_core.Transmitter.Distributed
           else Smart_core.Transmitter.Centralized);
        probe_interval = interval;
        transmit_interval = interval;
        netmon_targets = split_commas targets;
        security_log = (match seclog with Some f -> read_file f | None -> "");
      }
  in
  Smart_realnet.Monitor_daemon.start daemon;
  Logs.app (fun m -> m "monitor %s -> wizard %s (ctrl-c to stop)" host wizard);
  let rec wait () =
    Thread.delay interval;
    if split_commas targets <> [] then
      ignore (Smart_realnet.Monitor_daemon.refresh_netmon daemon);
    wait ()
  in
  wait ()

(* ------------------------------------------------------------------ *)
(* wizard                                                               *)
(* ------------------------------------------------------------------ *)

let run_wizard host distributed transmitters admission_rate admission_burst =
  setup_logs (Some Logs.Info);
  let mode =
    if distributed then
      Smart_core.Wizard.Distributed
        {
          transmitters =
            List.map
              (fun h ->
                {
                  Smart_core.Output.host = h;
                  port = Smart_proto.Ports.transmitter;
                })
              (split_commas transmitters);
          freshness_timeout = 2.0;
        }
    else Smart_core.Wizard.Centralized
  in
  let daemon =
    Smart_realnet.Wizard_daemon.create (book ())
      {
        Smart_realnet.Wizard_daemon.host;
        mode;
        staleness_threshold = infinity;
        admission =
          (match admission_rate with
          | None -> None
          | Some rate ->
            Some
              {
                Smart_core.Wizard.default_admission with
                Smart_core.Wizard.rate;
                burst = Option.value admission_burst ~default:rate;
              });
      }
  in
  Smart_realnet.Wizard_daemon.start daemon;
  Logs.app (fun m ->
      m "wizard %s listening on %d (ctrl-c to stop)" host
        Smart_proto.Ports.wizard);
  let rec wait () =
    Thread.delay 60.0;
    wait ()
  in
  wait ()

(* ------------------------------------------------------------------ *)
(* query                                                                *)
(* ------------------------------------------------------------------ *)

let run_query wizard wanted expr file connect strict =
  setup_logs (Some Logs.Warning);
  let requirement =
    match (expr, file) with
    | Some e, _ -> e ^ "\n"
    | None, Some f -> read_file f
    | None, None -> ""
  in
  (match Smart_core.Client.lint_requirement requirement with
  | Error e ->
    Fmt.epr "requirement does not compile: %s@." e;
    exit 2
  | Ok [] -> ()
  | Ok unknown ->
    Fmt.epr "warning: unbound variables: %s@." (String.concat ", " unknown));
  let option =
    if strict then Smart_proto.Wizard_msg.Strict
    else Smart_proto.Wizard_msg.Accept_partial
  in
  let b = book () in
  if connect then begin
    match
      Smart_realnet.Client_io.request_sockets b ~option ~wizard_host:wizard
        ~wanted ~requirement ()
    with
    | Error e ->
      Fmt.epr "query failed: %a@." Smart_core.Client.pp_error e;
      exit 1
    | Ok servers ->
      List.iter
        (fun (s : Smart_realnet.Client_io.connected_server) ->
          Fmt.pr "%s (connected)@." s.Smart_realnet.Client_io.host)
        servers;
      Smart_realnet.Client_io.close_all servers
  end
  else begin
    match
      Smart_realnet.Client_io.request_servers b ~option ~wizard_host:wizard
        ~wanted ~requirement ()
    with
    | Error e ->
      Fmt.epr "query failed: %a@." Smart_core.Client.pp_error e;
      exit 1
    | Ok servers -> List.iter (Fmt.pr "%s@.") servers
  end

(* ------------------------------------------------------------------ *)
(* metrics                                                              *)
(* ------------------------------------------------------------------ *)

(* Which daemon socket answers the scrape; see OBSERVABILITY.md. *)
let metrics_port = function
  | "wizard" -> Ok Smart_proto.Ports.wizard
  | "monitor" -> Ok Smart_proto.Ports.transmitter
  | "probe" -> Ok Smart_proto.Ports.probe
  | c -> Error c

let run_metrics host component json =
  setup_logs (Some Logs.Warning);
  match metrics_port component with
  | Error c ->
    Fmt.epr "unknown component %S (expected wizard, monitor or probe)@." c;
    exit 2
  | Ok port ->
    let format =
      if json then Smart_proto.Metrics_msg.Json else Smart_proto.Metrics_msg.Text
    in
    (match Smart_realnet.Client_io.scrape_metrics ~format (book ()) ~host ~port () with
    | Error reason ->
      Fmt.epr "scrape failed: %s@." reason;
      exit 1
    | Ok dump -> print_string dump)

(* ------------------------------------------------------------------ *)
(* trace                                                                *)
(* ------------------------------------------------------------------ *)

let run_trace host component json =
  setup_logs (Some Logs.Warning);
  match metrics_port component with
  | Error c ->
    Fmt.epr "unknown component %S (expected wizard, monitor or probe)@." c;
    exit 2
  | Ok port ->
    let format =
      if json then Smart_proto.Trace_msg.Json else Smart_proto.Trace_msg.Text
    in
    (match Smart_realnet.Client_io.scrape_trace ~format (book ()) ~host ~port () with
    | Error reason ->
      Fmt.epr "scrape failed: %s@." reason;
      exit 1
    | Ok dump -> print_string dump)

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing                                                    *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let host_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "host" ] ~docv:"NAME" ~doc:"Logical name of this machine.")

let probe_cmd =
  let ip =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "ip" ] ~docv:"IP" ~doc:"Address reported to the monitor.")
  in
  let monitor =
    Arg.(
      required
      & opt (some string) None
      & info [ "monitor" ] ~docv:"HOST" ~doc:"System monitor host.")
  in
  let interval =
    Arg.(
      value & opt float 5.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Probe reporting interval.")
  in
  Cmd.v
    (Cmd.info "probe" ~doc:"Run the server probe daemon on this machine.")
    Term.(const run_probe $ host_arg $ ip $ monitor $ interval)

let monitor_cmd =
  let wizard =
    Arg.(
      required
      & opt (some string) None
      & info [ "wizard" ] ~docv:"HOST" ~doc:"Wizard machine host.")
  in
  let targets =
    Arg.(
      value & opt string ""
      & info [ "targets" ] ~docv:"HOSTS"
          ~doc:"Comma-separated network-monitor probing targets.")
  in
  let seclog =
    Arg.(
      value
      & opt (some file) None
      & info [ "seclog" ] ~docv:"FILE" ~doc:"Security log file.")
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Transmit interval.")
  in
  let distributed =
    Arg.(
      value & flag
      & info [ "distributed" ] ~doc:"Passive transmitter (pull-driven).")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Run the system/network/security monitors and the transmitter.")
    Term.(
      const run_monitor $ host_arg $ wizard $ targets $ seclog $ interval
      $ distributed)

let wizard_cmd =
  let distributed =
    Arg.(
      value & flag & info [ "distributed" ] ~doc:"Pull snapshots per request.")
  in
  let transmitters =
    Arg.(
      value & opt string ""
      & info [ "transmitters" ] ~docv:"HOSTS"
          ~doc:"Comma-separated transmitter hosts (distributed mode).")
  in
  let admission_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "admission-rate" ] ~docv:"REQ_PER_S"
          ~doc:
            "Arm per-client admission control: sustained requests per second \
             allowed per client host (off when absent).")
  in
  let admission_burst =
    Arg.(
      value
      & opt (some float) None
      & info [ "admission-burst" ] ~docv:"TOKENS"
          ~doc:"Admission burst per client (defaults to the rate).")
  in
  Cmd.v
    (Cmd.info "wizard" ~doc:"Run the receiver and the wizard daemon.")
    Term.(
      const run_wizard $ host_arg $ distributed $ transmitters $ admission_rate
      $ admission_burst)

let query_cmd =
  let wizard =
    Arg.(
      required
      & opt (some string) None
      & info [ "wizard" ] ~docv:"HOST" ~doc:"Wizard machine host.")
  in
  let wanted =
    Arg.(
      value & opt int 1
      & info [ "servers" ] ~docv:"N" ~doc:"Number of servers wanted.")
  in
  let expr =
    Arg.(
      value
      & opt (some string) None
      & info [ "expr"; "e" ] ~docv:"REQUIREMENT"
          ~doc:"Requirement expression (one line).")
  in
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "file"; "f" ] ~docv:"FILE" ~doc:"Requirement file.")
  in
  let connect =
    Arg.(
      value & flag
      & info [ "connect" ] ~doc:"TCP-connect to each returned server.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Fail unless the full server count is found.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Ask the wizard for qualified servers.")
    Term.(const run_query $ wizard $ wanted $ expr $ file $ connect $ strict)

let metrics_cmd =
  let target =
    Arg.(
      required
      & opt (some string) None
      & info [ "host" ] ~docv:"NAME" ~doc:"Host the daemon runs on.")
  in
  let component =
    Arg.(
      value & opt string "wizard"
      & info [ "component" ] ~docv:"KIND"
          ~doc:
            "Which daemon to scrape: $(b,wizard), $(b,monitor) (the \
             transmitter's pull port) or $(b,probe) (the echo port).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the dump as JSON instead of text lines.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Dump a running daemon's metrics registry (counters, gauges, \
             latency quantiles).")
    Term.(const run_metrics $ target $ component $ json)

let trace_cmd =
  let target =
    Arg.(
      required
      & opt (some string) None
      & info [ "host" ] ~docv:"NAME" ~doc:"Host the daemon runs on.")
  in
  let component =
    Arg.(
      value & opt string "wizard"
      & info [ "component" ] ~docv:"KIND"
          ~doc:
            "Which daemon to scrape: $(b,wizard), $(b,monitor) (the \
             transmitter's pull port) or $(b,probe) (the echo port).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit Chrome trace-event JSON (Perfetto-loadable) instead of \
             text lines.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Dump a running daemon's flight recorder (recent spans with \
             trace and parent ids).")
    Term.(const run_trace $ target $ component $ json)

let () =
  let doc = "Smart TCP socket for distributed computing (ICPP 2005)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "smart" ~version:"1.0.0" ~doc)
          [ probe_cmd; monitor_cmd; wizard_cmd; query_cmd; metrics_cmd;
            trace_cmd ]))
