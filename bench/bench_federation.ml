(* Federated fan-out benchmark: the same request load is answered by a
   root over 1, 2, 4 and 8 shards of one synthetic server pool, so the
   numbers show how the aggregation tree's latency behaves as the status
   plane is split (DESIGN.md §13).

   The pool holds BENCH_FED_SERVERS servers (default 6000 — the scale
   where a single flat mirror's columnar scan is clearly the dominant
   term).  For each shard count the servers are partitioned round-robin
   into per-shard status databases, each fronted by a regional wizard;
   digests are registered with the root exactly as the uplink
   transmitters would deliver them.  Requests are then driven through
   the real message path in process — root fan-out, shard
   [handle_subquery] scans, reply merge — with datagrams routed by
   destination host instead of a socket, and each request is timed
   end-to-end (encode -> fan-out -> per-shard select -> merge ->
   decode).

   The acceptance gate this feeds (ISSUE 7): p99 at the highest shard
   count stays within 1.5x of the single-shard p99 — splitting the
   plane must not cost the client latency — and every request succeeds.

   Two latency views are reported (ISSUE 9).  client_latency_* is the
   end-to-end time of the in-process message path, measured at the
   client.  fed_latency_* is the deployment-wide server-side view: each
   shard wizard's subquery latencies accumulate in its private
   mergeable quantile sketch, the batches are registered with the root
   exactly as the sketch uplink would deliver them, and the root's
   merged sketch answers p50/p95/p99 over the union of all shards'
   observations — the quantiles a SMART-METRICS scrape of a live root
   serves.

   Results go to stdout and to BENCH_federation.json for trend tracking
   across PRs. *)

module C = Smart_core
module P = Smart_proto

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> (try int_of_string (String.trim v) with _ -> default)
  | None -> default

let servers = env_int "BENCH_FED_SERVERS" 6000
let requests = env_int "BENCH_FED_REQUESTS" 200
let shard_counts = [ 1; 2; 4; 8 ]
let wanted = 10

let host_of i = Printf.sprintf "srv%05d" i
let shard_of k = Printf.sprintf "shard%d" k

let report i =
  {
    P.Report.host = host_of i;
    ip = Printf.sprintf "10.%d.%d.%d" (i / 62500) (i / 250 mod 250) (i mod 250);
    load1 = 0.05 *. float_of_int (i mod 8);
    load5 = 0.1;
    load15 = 0.1;
    cpu_user = 0.01 *. float_of_int (i mod 50);
    cpu_nice = 0.0;
    cpu_system = 0.01;
    cpu_free = 1.0 -. (0.01 *. float_of_int (i mod 50));
    bogomips = 2000.0 +. (100.0 *. float_of_int (i mod 30));
    mem_total = 512.0;
    mem_used = 12.0 +. float_of_int (i mod 400);
    mem_free = 500.0 -. float_of_int (i mod 400);
    mem_buffers = 16.0;
    mem_cached = 64.0;
    disk_rreq = 1.0;
    disk_rblocks = 8.0;
    disk_wreq = 1.0;
    disk_wblocks = 8.0;
    net_rbytes = 1024.0;
    net_rpackets = 4.0;
    net_tbytes = 2048.0;
    net_tpackets = 6.0;
  }

(* One shard's slice of the pool: servers assigned round-robin, one
   monitor's network entries toward each of them, security levels for
   all. *)
let populate_shard db k nshards =
  let mine = ref [] in
  for i = servers - 1 downto 0 do
    if i mod nshards = k then mine := i :: !mine
  done;
  List.iter
    (fun i ->
      C.Status_db.update_sys db
        { P.Records.report = report i; updated_at = 100.0 })
    !mine;
  C.Status_db.update_net db
    {
      P.Records.monitor = Printf.sprintf "mon%d" k;
      entries =
        List.map
          (fun i ->
            {
              P.Records.peer = host_of i;
              delay = 0.001 +. (0.0001 *. float_of_int (i mod 9));
              bandwidth = 10e6 +. (1e5 *. float_of_int (i mod 7));
              measured_at = 50.0;
            })
          !mine;
    };
  C.Status_db.replace_sec db
    {
      P.Records.entries =
        List.map
          (fun i -> { P.Records.host = host_of i; level = 1 + (i mod 5) })
          !mine;
    }

let requirement =
  "host_cpu_free > 0.2\n\
   host_memory_free > 10\n\
   monitor_network_bw > 1\n\
   host_security_level >= 1\n\
   order_by = host_memory_free\n"

let client = { C.Output.host = "client"; port = 4000 }
let root_addr = { C.Output.host = "root"; port = P.Ports.fed }

(* Drain the datagram exchange a request triggers: subqueries go to the
   named shard wizard, shard replies back into the root, and the merged
   reply addressed to the client is the result. *)
let pump root wizards outputs =
  let final = ref None in
  let queue = Queue.create () in
  List.iter (fun o -> Queue.add o queue) outputs;
  while not (Queue.is_empty queue) do
    match Queue.pop queue with
    | C.Output.Stream _ -> ()
    | C.Output.Udp { dst; data } ->
      if String.equal dst.C.Output.host "client" then final := Some data
      else (
        match List.assoc_opt dst.C.Output.host wizards with
        | Some wizard ->
          List.iter
            (fun o -> Queue.add o queue)
            (C.Wizard.handle_subquery wizard ~from:root_addr data)
        | None ->
          List.iter
            (fun o -> Queue.add o queue)
            (C.Fed_root.handle_reply root data))
  done;
  !final

type shard_result = {
  sr_shards : int;
  sr_rps : float;
  sr_p50 : float;  (* client end-to-end *)
  sr_p99 : float;
  sr_fed_p50 : float;  (* root-merged shard sketches *)
  sr_fed_p95 : float;
  sr_fed_p99 : float;
  sr_ok : int;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

let run_shard_count nshards =
  let shards =
    List.init nshards (fun k ->
        let db = C.Status_db.create () in
        populate_shard db k nshards;
        ( shard_of k,
          db,
          C.Wizard.create ~shard_name:(shard_of k) ~clock:Unix.gettimeofday
            { C.Wizard.mode = C.Wizard.Centralized; groups = None }
            db ))
  in
  let wizards = List.map (fun (name, _, wizard) -> (name, wizard)) shards in
  let root =
    C.Fed_root.create
      {
        C.Fed_root.shards =
          List.map
            (fun (name, _) ->
              {
                C.Fed_root.name;
                addr = { C.Output.host = name; port = P.Ports.fed };
              })
            wizards;
        fanout_timeout = 1.0;
        routing = true;
      }
  in
  (* digests exactly as the uplink transmitters would ship them *)
  List.iter
    (fun (name, db, wizard) ->
      C.Fed_root.note_digest root
        (C.Status_db.summary db ~shard:name ~net_for:(fun host ->
             C.Wizard.net_entry_for wizard ~host)))
    shards;
  let encoded seq =
    P.Wizard_msg.encode_request
      {
        P.Wizard_msg.seq;
        server_num = wanted;
        option = P.Wizard_msg.Accept_partial;
        requirement;
        trace = Smart_util.Tracelog.root;
      }
  in
  let one seq =
    pump root wizards
      (C.Fed_root.handle_request root ~now:0.0 ~from:client (encoded seq))
  in
  (* untimed warm-up: columnar snapshots and compile caches *)
  ignore (one 0);
  let latencies = Array.make requests 0.0 in
  let ok = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to requests - 1 do
    let s0 = Unix.gettimeofday () in
    let reply = one (i + 1) in
    latencies.(i) <- Unix.gettimeofday () -. s0;
    match Option.map P.Wizard_msg.decode_reply reply with
    | Some (Ok r)
      when List.length r.P.Wizard_msg.servers = wanted
           && not r.P.Wizard_msg.degraded ->
      incr ok
    | _ -> ()
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.sort Float.compare latencies;
  (* sketch batches exactly as the uplink transmitters would ship them;
     the root merges them into the deployment-wide latency view *)
  List.iter
    (fun (name, _, wizard) ->
      C.Fed_root.note_sketches root
        {
          P.Sketch_msg.shard = name;
          entries =
            [ (C.Fed_root.latency_metric, C.Wizard.latency_sketch wizard) ];
        })
    shards;
  let fed_q p =
    match C.Fed_root.merged_sketch root C.Fed_root.latency_metric with
    | Some sketch -> Smart_util.Sketch.quantile sketch p
    | None -> Float.nan
  in
  {
    sr_shards = nshards;
    sr_rps = float_of_int requests /. elapsed;
    sr_p50 = percentile latencies 0.50;
    sr_p99 = percentile latencies 0.99;
    sr_fed_p50 = fed_q 0.50;
    sr_fed_p95 = fed_q 0.95;
    sr_fed_p99 = fed_q 0.99;
    sr_ok = !ok;
  }

let json_float = Smart_util.Json.number

let run () =
  let results = List.map run_shard_count shard_counts in
  let tab =
    Smart_util.Tabular.create
      ~title:
        (Printf.sprintf "federated fan-out, %d servers, %d requests" servers
           requests)
      ~header:
        [ "shards"; "req/s"; "client p50"; "client p99"; "fed p50"; "fed p95";
          "fed p99"; "ok" ]
  in
  List.iter
    (fun r ->
      Smart_util.Tabular.add_row tab
        [
          string_of_int r.sr_shards;
          Printf.sprintf "%.0f" r.sr_rps;
          Printf.sprintf "%.1f us" (1e6 *. r.sr_p50);
          Printf.sprintf "%.1f us" (1e6 *. r.sr_p99);
          Printf.sprintf "%.1f us" (1e6 *. r.sr_fed_p50);
          Printf.sprintf "%.1f us" (1e6 *. r.sr_fed_p95);
          Printf.sprintf "%.1f us" (1e6 *. r.sr_fed_p99);
          Printf.sprintf "%d/%d" r.sr_ok requests;
        ])
    results;
  Smart_util.Tabular.print tab;
  let first = List.hd results in
  let last = List.nth results (List.length results - 1) in
  let p99_ratio =
    if first.sr_p99 > 0.0 then last.sr_p99 /. first.sr_p99 else Float.nan
  in
  let success_rate =
    float_of_int (List.fold_left (fun a r -> a + r.sr_ok) 0 results)
    /. float_of_int (requests * List.length results)
  in
  Fmt.pr "p99 ratio %d shards vs 1: %.2f, success rate %.3f@." last.sr_shards
    p99_ratio success_rate;
  let oc = open_out "BENCH_federation.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"federation_fanout\",\n\
    \  \"servers\": %d,\n\
    \  \"requests_per_shard_count\": %d,\n\
    \  \"wanted\": %d,\n\
    \  \"results\": [\n%s\n\
    \  ],\n\
    \  \"request_success_rate\": %s,\n\
    \  \"p99_ratio_max_vs_one\": %s\n\
     }\n"
    servers requests wanted
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "    { \"shards\": %d, \"requests_per_sec\": %s, \
               \"client_latency_p50_s\": %s, \"client_latency_p99_s\": %s, \
               \"fed_latency_p50_s\": %s, \"fed_latency_p95_s\": %s, \
               \"fed_latency_p99_s\": %s }"
              r.sr_shards (json_float r.sr_rps) (json_float r.sr_p50)
              (json_float r.sr_p99) (json_float r.sr_fed_p50)
              (json_float r.sr_fed_p95) (json_float r.sr_fed_p99))
          results))
    (json_float success_rate) (json_float p99_ratio);
  close_out oc;
  Fmt.pr "wrote BENCH_federation.json@."
