(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md §4 for the index), then runs bechamel
   micro-benchmarks of the core primitives.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- tab5.3 fig5.2 micro   # selected sections
     dune exec bench/main.exe -- --list    # section ids *)

let section_header id title =
  Fmt.pr "@.======================================================@.";
  Fmt.pr "%s — %s@." id title;
  Fmt.pr "======================================================@.@."

(* ------------------------------------------------------------------ *)
(* Paper sections                                                      *)
(* ------------------------------------------------------------------ *)

let fig33_35 () =
  section_header "fig3.3-3.5" "RTT vs payload at MTU 1500/1000/500";
  List.iter Smart_experiments.Exp_rtt.print_sweep
    (Smart_experiments.Exp_rtt.mtu_sweeps ())

let fig36 () =
  section_header "fig3.6/tab3.2" "RTT sweeps on the six sample paths";
  List.iter Smart_experiments.Exp_rtt.print_sweep
    (Smart_experiments.Exp_rtt.sample_paths ())

let tab33 () =
  section_header "tab3.3/fig3.7" "bandwidth vs probe packet size";
  Smart_experiments.Exp_bw.print (Smart_experiments.Exp_bw.run ())

let tab34 () =
  section_header "tab3.4" "network monitor records";
  Smart_experiments.Exp_netmon.print (Smart_experiments.Exp_netmon.run ())

let tab41 () =
  section_header "tab4.1" "memory before/after SuperPI";
  Smart_experiments.Exp_superpi.print (Smart_experiments.Exp_superpi.run ())

let tab52 () =
  section_header "tab5.2" "per-component resource usage";
  Smart_experiments.Exp_resources.print
    (Smart_experiments.Exp_resources.run ())

let fig52 () =
  section_header "fig5.2" "matrix benchmark per machine";
  Smart_experiments.Exp_matmul.print_benchmark
    (Smart_experiments.Exp_matmul.benchmark ())

let matmul_tables () =
  section_header "tab5.3-5.6" "matrix multiplication: random vs smart";
  List.iter Smart_experiments.Exp_matmul.print_comparison
    (Smart_experiments.Exp_matmul.run_all ())

let fig53 () =
  section_header "fig5.3" "rshaper vs massd calibration";
  Smart_experiments.Exp_massd.print_calibration
    (Smart_experiments.Exp_massd.calibration ())

let massd_tables () =
  section_header "tab5.7-5.9" "massd: random vs smart";
  List.iter Smart_experiments.Exp_massd.print_table
    (Smart_experiments.Exp_massd.run_all ())

let wizard_throughput () =
  section_header "wizard" "wizard request throughput: cold vs cached";
  Bench_wizard.run ()

let federation_fanout () =
  section_header "federation" "federated fan-out: req/s and p99 vs shard count";
  Bench_federation.run ()

let session_plane () =
  section_header "sessions"
    "session plane: survival under churn, admission fairness under overload";
  Bench_sessions.run ()

let ablations () =
  section_header "ablation" "design-choice ablations (DESIGN.md §5)";
  Smart_experiments.Exp_ablation.print_init_speed
    (Smart_experiments.Exp_ablation.init_speed_ablation ());
  Smart_experiments.Exp_ablation.print_spacing
    (Smart_experiments.Exp_ablation.spacing_ablation ());
  Smart_experiments.Exp_ablation.print_modes
    (Smart_experiments.Exp_ablation.mode_ablation ());
  Smart_experiments.Exp_ablation.print_staleness
    (Smart_experiments.Exp_ablation.staleness_ablation ())

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let sample_requirement =
  "host_system_load1 < 1\n\
   host_memory_used <= 250*1024*1024\n\
   host_cpu_free >= 0.9\n\
   host_network_tbytesps < 1024*1024\n\
   user_denied_host1 = 137.132.90.182\n\
   user_preferred_host1 = sagit.ddns.comp.nus.edu.sg\n"

let sample_report =
  {
    Smart_proto.Report.host = "helene";
    ip = "192.168.2.3";
    load1 = 0.42;
    load5 = 0.21;
    load15 = 0.08;
    cpu_user = 0.31;
    cpu_nice = 0.0;
    cpu_system = 0.04;
    cpu_free = 0.65;
    bogomips = 3394.76;
    mem_total = 256.0;
    mem_used = 120.5;
    mem_free = 135.5;
    mem_buffers = 18.0;
    mem_cached = 80.2;
    disk_rreq = 12.0;
    disk_rblocks = 96.0;
    disk_wreq = 5.5;
    disk_wblocks = 44.0;
    net_rbytes = 20480.0;
    net_rpackets = 22.0;
    net_tbytes = 10240.0;
    net_tpackets = 11.0;
  }

let micro () =
  section_header "micro" "bechamel micro-benchmarks of core primitives";
  let open Bechamel in
  let compiled =
    match Smart_lang.Requirement.compile sample_requirement with
    | Ok p -> p
    | Error _ -> assert false
  in
  let bindings name = Smart_proto.Report.variable sample_report name
                      |> Option.map (fun f -> Smart_lang.Value.Num f) in
  let encoded_record =
    Smart_proto.Records.encode_sys Smart_proto.Endian.Little
      { Smart_proto.Records.report = sample_report; updated_at = 1.0 }
  in
  let report_string = Smart_proto.Report.to_string sample_report in
  let rng = Smart_util.Prng.create ~seed:99 in
  let m100 = Smart_apps.Matrix.random ~rng 100 in
  let flows_spec =
    Array.init 64 (fun i -> [ i mod 12; (i + 3) mod 12; (i + 7) mod 12 ])
  in
  let capacities = Array.make 12 12.5e6 in
  let tests =
    Test.make_grouped ~name:"smart"
      [
        Test.make ~name:"lang.compile" (Staged.stage (fun () ->
            Smart_lang.Requirement.compile sample_requirement));
        Test.make ~name:"lang.evaluate" (Staged.stage (fun () ->
            Smart_lang.Requirement.evaluate compiled ~lookup:bindings));
        Test.make ~name:"proto.report_parse" (Staged.stage (fun () ->
            Smart_proto.Report.of_string report_string));
        Test.make ~name:"proto.record_decode" (Staged.stage (fun () ->
            Smart_proto.Records.decode_sys Smart_proto.Endian.Little
              encoded_record ~pos:0));
        Test.make ~name:"util.heap_1k" (Staged.stage (fun () ->
            let h = Smart_util.Heap.create () in
            for i = 0 to 999 do
              Smart_util.Heap.push h ~key:(float_of_int ((i * 7919) mod 997)) i
            done;
            while not (Smart_util.Heap.is_empty h) do
              ignore (Smart_util.Heap.pop h)
            done));
        Test.make ~name:"net.fairshare_64x12" (Staged.stage (fun () ->
            Smart_net.Fairshare.rates ~capacities ~flows:flows_spec));
        Test.make ~name:"apps.matmul_100" (Staged.stage (fun () ->
            Smart_apps.Matrix.multiply m100 m100));
        Test.make ~name:"sim.engine_1k_events" (Staged.stage (fun () ->
            let e = Smart_sim.Engine.create () in
            for i = 0 to 999 do
              ignore
                (Smart_sim.Engine.schedule_at e
                   ~time:(float_of_int ((i * 31) mod 101))
                   (fun () -> ()))
            done;
            Smart_sim.Engine.run e ~until:200.0));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0
         ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let tab =
    Smart_util.Tabular.create ~title:"micro-benchmarks"
      ~header:[ "benchmark"; "time/run"; "r²" ]
  in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Fmt.str "%.1f ns" e
        | Some [] | None -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Fmt.str "%.4f" r
        | None -> "-"
      in
      Smart_util.Tabular.add_row tab [ name; estimate; r2 ])
    (List.sort compare rows);
  Smart_util.Tabular.print tab

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let sections : (string * string * (unit -> unit)) list =
  [
    ("fig3.3-3.5", "RTT vs payload at three MTUs (sagit->suna)", fig33_35);
    ("fig3.6", "RTT sweeps on the six Table 3.2 paths", fig36);
    ("tab3.3", "bandwidth vs probe size + pipechar/pathload", tab33);
    ("tab3.4", "network monitor mesh records", tab34);
    ("tab4.1", "meminfo before/after SuperPI", tab41);
    ("tab5.2", "per-component resource usage", tab52);
    ("fig5.2", "per-machine matrix benchmark", fig52);
    ("tab5.3-5.6", "matmul random vs smart (4 experiments)", matmul_tables);
    ("fig5.3", "rshaper vs massd calibration", fig53);
    ("tab5.7-5.9", "massd random vs smart (3 experiments)", massd_tables);
    ("ablation", "design-choice ablations", ablations);
    ("wizard", "wizard request throughput, cold vs cached", wizard_throughput);
    ("federation", "federated fan-out, req/s and p99 vs shards", federation_fanout);
    ("sessions", "session plane: churn survival + admission fairness", session_plane);
    ("micro", "bechamel micro-benchmarks", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--list" args then
    List.iter (fun (id, doc, _) -> Fmt.pr "%-12s %s@." id doc) sections
  else begin
    let wanted = List.filter (fun a -> a <> "--list") args in
    let chosen =
      if wanted = [] then sections
      else
        List.filter
          (fun (id, _, _) ->
            List.exists
              (fun w -> id = w || (String.length w < String.length id
                                   && String.sub id 0 (String.length w) = w))
              wanted)
          sections
    in
    if chosen = [] then begin
      Fmt.epr "no matching sections; try --list@.";
      exit 1
    end;
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (id, _, f) ->
        let s0 = Unix.gettimeofday () in
        f ();
        Fmt.pr "[%s done in %.1f s wall]@." id (Unix.gettimeofday () -. s0))
      chosen;
    Fmt.pr "@.all sections done in %.1f s wall@." (Unix.gettimeofday () -. t0)
  end
