(* Session-plane benchmark (DESIGN.md §15), two phases.

   Phase A — survival under churn: a simulated cluster (4 servers, one
   group) carries BENCH_SESSIONS_COUNT long-lived sessions through a
   crash + partition + heal fault plan on the flow-level TCP model.
   Reported: sessions survived, completed migrations, migration latency
   p95 (from the session.migration_latency_seconds histogram), and the
   work ledger — issued / completed / requeued / lost.  The acceptance
   gate pins success rate at 1.0 and lost at 0.  Runs on virtual time,
   so the phase is deterministic and takes milliseconds of wall clock.

   Phase B — admission fairness under overload: an in-process wizard
   with per-client token buckets armed (rate 50/s, burst 10) faces
   BENCH_SESSIONS_CLIENTS clients each offering 2x the per-client rate
   for a synthetic-clock window.  Replies are counted per client and
   the Jain fairness index (sum x)^2 / (n * sum x^2) of admitted
   requests is computed; the gate requires >= 0.95 — overload must shed
   evenly, not starve whoever hashes badly.  The clock is a stepped
   float, so the phase is bit-deterministic.

   Results go to stdout and BENCH_sessions.json for trend tracking. *)

module C = Smart_core
module H = Smart_host
module P = Smart_proto

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> (try int_of_string (String.trim v) with _ -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> (try float_of_string (String.trim v) with _ -> default)
  | None -> default

let session_count = env_int "BENCH_SESSIONS_COUNT" 8
let churn_duration = env_float "BENCH_SESSIONS_DURATION" 20.0
let fair_clients = env_int "BENCH_SESSIONS_CLIENTS" 8
let fair_window = env_float "BENCH_SESSIONS_WINDOW" 2.0
let overload_factor = 2.0
let fairness_gate = 0.95

(* ------------------------------------------------------------------ *)
(* Phase A: sessions under churn                                       *)
(* ------------------------------------------------------------------ *)

type churn_result = {
  cr_sessions : int;
  cr_survived : int;
  cr_migrations : int;
  cr_migration_p95 : float;
  cr_issued : int;
  cr_completed : int;
  cr_requeued : int;
  cr_lost : int;
}

let churn_world seed =
  let c = H.Cluster.create ~seed () in
  let spec name ip =
    { (H.Testbed.spec_of_name "helene") with H.Machine.name; ip }
  in
  let add name ip = H.Cluster.add_machine c (spec name ip) in
  let wiz = add "wiz" "10.0.0.1" in
  let cli = add "cli" "10.0.0.2" in
  let mon = add "mon" "10.0.0.3" in
  let servers =
    List.init 4 (fun i ->
        add (Printf.sprintf "s%d" (i + 1)) (Printf.sprintf "10.0.1.%d" (i + 1)))
  in
  let sw = H.Cluster.add_switch c ~name:"sw" ~ip:"10.0.0.254" in
  List.iter
    (fun n -> ignore (H.Cluster.link c ~a:n ~b:sw H.Testbed.lan_conf))
    (wiz :: cli :: mon :: servers);
  let config =
    {
      C.Simdriver.default_config with
      C.Simdriver.transmit_interval = 0.5;
      frame_crc = true;
      wizard_staleness = 3.0;
    }
  in
  let d =
    C.Simdriver.deploy ~config c ~monitor:"mon" ~wizard_host:"wiz"
      ~servers:[ "s1"; "s2"; "s3"; "s4" ]
  in
  (c, d)

let run_churn () =
  let c, d = churn_world 11 in
  C.Simdriver.settle ~duration:8.0 d;
  let base = H.Cluster.now c in
  let module F = Smart_sim.Faults in
  ignore
    (C.Simdriver.install_faults d
       [
         { F.at = base +. 4.3; action = F.Crash_node "s1" };
         { F.at = base +. 8.1; action = F.Partition_host "s2" };
         { F.at = base +. 14.2; action = F.Restart_node "s1" };
         { F.at = base +. 18.1; action = F.Heal_host "s2" };
       ]);
  let report =
    C.Simdriver.run_sessions d
      ~clients:[ ("cli", session_count) ]
      ~requirement:"host_cpu_free > 0.05\norder_by = host_memory_free\n"
      ~work_interval:0.5 ~duration:churn_duration
  in
  let p95 =
    match
      Smart_util.Metrics.find (C.Simdriver.metrics d)
        "session.migration_latency_seconds"
    with
    | Some (Smart_util.Metrics.Histogram h) -> h.Smart_util.Metrics.p95
    | Some _ | None -> Float.nan
  in
  {
    cr_sessions = report.C.Simdriver.sessions;
    cr_survived = report.C.Simdriver.survived;
    cr_migrations = report.C.Simdriver.migrations;
    cr_migration_p95 = p95;
    cr_issued = report.C.Simdriver.work_issued;
    cr_completed = report.C.Simdriver.work_completed;
    cr_requeued = report.C.Simdriver.work_requeued;
    cr_lost = report.C.Simdriver.work_lost;
  }

(* ------------------------------------------------------------------ *)
(* Phase B: admission fairness under 2x overload                       *)
(* ------------------------------------------------------------------ *)

type fairness_result = {
  fr_offered : int;
  fr_admitted : int;
  fr_rejected : int;
  fr_delayed : int;
  fr_index : float;  (* Jain over per-client admitted counts *)
}

let fair_report i =
  {
    P.Report.host = Printf.sprintf "srv%d" i;
    ip = Printf.sprintf "10.9.0.%d" (i + 1);
    load1 = 0.1;
    load5 = 0.1;
    load15 = 0.1;
    cpu_user = 0.1;
    cpu_nice = 0.0;
    cpu_system = 0.01;
    cpu_free = 0.8;
    bogomips = 3000.0;
    mem_total = 512.0;
    mem_used = 100.0;
    mem_free = 400.0;
    mem_buffers = 8.0;
    mem_cached = 32.0;
    disk_rreq = 1.0;
    disk_rblocks = 8.0;
    disk_wreq = 1.0;
    disk_wblocks = 8.0;
    net_rbytes = 1024.0;
    net_rpackets = 4.0;
    net_tbytes = 1024.0;
    net_tpackets = 4.0;
  }

let run_fairness () =
  let db = C.Status_db.create () in
  for i = 0 to 3 do
    C.Status_db.update_sys db
      { P.Records.report = fair_report i; updated_at = 1.0 }
  done;
  let admission =
    { C.Wizard.default_admission with C.Wizard.max_clients = 64 }
  in
  (* synthetic stepped clock: the whole phase is bit-deterministic *)
  let now = ref 0.0 in
  let wizard =
    C.Wizard.create ~clock:(fun () -> !now) ~admission
      { C.Wizard.mode = C.Wizard.Centralized; groups = None }
      db
  in
  let admitted = Array.make fair_clients 0 in
  let rejected = ref 0 in
  let count_outputs outputs =
    List.iter
      (fun output ->
        match output with
        | C.Output.Stream _ -> ()
        | C.Output.Udp { dst; data } -> (
          match P.Wizard_msg.decode_reply data with
          | Error _ -> ()
          | Ok reply ->
            (* client index rides in the reply port *)
            let i = dst.C.Output.port - 4000 in
            if i >= 0 && i < fair_clients then
              if reply.P.Wizard_msg.rejected then incr rejected
              else admitted.(i) <- admitted.(i) + 1))
      outputs
  in
  let per_client_rate = admission.C.Wizard.rate *. overload_factor in
  let dt = 1.0 /. per_client_rate in
  let steps = int_of_float (fair_window /. dt) in
  let seq = ref 0 in
  let offered = ref 0 in
  for _step = 1 to steps do
    now := !now +. dt;
    for i = 0 to fair_clients - 1 do
      incr seq;
      incr offered;
      let data =
        P.Wizard_msg.encode_request
          {
            P.Wizard_msg.seq = !seq;
            server_num = 2;
            option = P.Wizard_msg.Accept_partial;
            requirement = "host_cpu_free > 0.2\n";
            trace = Smart_util.Tracelog.root;
          }
      in
      count_outputs
        (C.Wizard.handle_request wizard ~now:!now
           ~from:{ C.Output.host = Printf.sprintf "cli%d" i; port = 4000 + i }
           data)
    done;
    count_outputs (C.Wizard.tick wizard ~now:!now)
  done;
  (* flush the parked tail *)
  now := !now +. admission.C.Wizard.max_delay +. 0.1;
  count_outputs (C.Wizard.tick wizard ~now:!now);
  let sum = Array.fold_left (fun a x -> a + x) 0 admitted in
  let sum_sq =
    Array.fold_left (fun a x -> a +. (float_of_int x *. float_of_int x)) 0.0
      admitted
  in
  let jain =
    if sum = 0 then Float.nan
    else
      float_of_int (sum * sum) /. (float_of_int fair_clients *. sum_sq)
  in
  {
    fr_offered = !offered;
    fr_admitted = sum;
    fr_rejected = !rejected;
    fr_delayed = C.Wizard.admission_delayed wizard;
    fr_index = jain;
  }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let json_float = Smart_util.Json.number

let run () =
  let t0 = Unix.gettimeofday () in
  let churn = run_churn () in
  let fair = run_fairness () in
  let tab =
    Smart_util.Tabular.create
      ~title:
        (Printf.sprintf "session plane: %d sessions under churn, %d clients at %.0fx overload"
           session_count fair_clients overload_factor)
      ~header:[ "measure"; "value" ]
  in
  let row k v = Smart_util.Tabular.add_row tab [ k; v ] in
  row "sessions survived"
    (Printf.sprintf "%d/%d" churn.cr_survived churn.cr_sessions);
  row "migrations" (string_of_int churn.cr_migrations);
  row "migration p95"
    (if Float.is_nan churn.cr_migration_p95 then "n/a"
     else Printf.sprintf "%.3f ms" (churn.cr_migration_p95 *. 1e3));
  row "work issued/completed"
    (Printf.sprintf "%d/%d" churn.cr_issued churn.cr_completed);
  row "work requeued" (string_of_int churn.cr_requeued);
  row "work lost" (string_of_int churn.cr_lost);
  row "admission offered/admitted"
    (Printf.sprintf "%d/%d" fair.fr_offered fair.fr_admitted);
  row "admission rejected" (string_of_int fair.fr_rejected);
  row "admission delayed" (string_of_int fair.fr_delayed);
  row "fairness index (Jain)" (Printf.sprintf "%.4f" fair.fr_index);
  Smart_util.Tabular.print tab;
  let success_rate =
    if churn.cr_sessions = 0 then Float.nan
    else float_of_int churn.cr_survived /. float_of_int churn.cr_sessions
  in
  Fmt.pr "session success rate %.3f, fairness %.4f (gate %.2f)@." success_rate
    fair.fr_index fairness_gate;
  let oc = open_out "BENCH_sessions.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"session_plane\",\n\
    \  \"sessions\": %d,\n\
    \  \"sessions_survived\": %d,\n\
    \  \"session_success_rate\": %s,\n\
    \  \"migrations_total\": %d,\n\
    \  \"migration_p95_s\": %s,\n\
    \  \"work_issued\": %d,\n\
    \  \"work_completed\": %d,\n\
    \  \"work_requeued\": %d,\n\
    \  \"work_lost\": %d,\n\
    \  \"admission_offered\": %d,\n\
    \  \"admission_admitted\": %d,\n\
    \  \"admission_rejected\": %d,\n\
    \  \"admission_delayed\": %d,\n\
    \  \"overload_factor\": %s,\n\
    \  \"fairness_index\": %s,\n\
    \  \"fairness_gate\": %s\n\
     }\n"
    churn.cr_sessions churn.cr_survived (json_float success_rate)
    churn.cr_migrations (json_float churn.cr_migration_p95) churn.cr_issued
    churn.cr_completed churn.cr_requeued churn.cr_lost fair.fr_offered
    fair.fr_admitted fair.fr_rejected fair.fr_delayed
    (json_float overload_factor) (json_float fair.fr_index)
    (json_float fairness_gate);
  close_out oc;
  Fmt.pr "wrote BENCH_sessions.json in %.1f s wall@."
    (Unix.gettimeofday () -. t0)
