(* Wizard request-throughput benchmark on a synthetic 60-server x
   16-monitor status plane (the scale the ROADMAP's growth needs long
   before "millions of users").

   Two configurations of the very same request path are measured
   end-to-end (decode -> compile -> select -> encode):

   - cold: the compile cache is disabled and a status write lands
     between requests, so every request recompiles the requirement and
     rebuilds the server-view snapshot — the pre-cache behaviour;
   - warm: caching on and the database quiet between requests, so the
     compiled program and the snapshot are both reused;
   - warm+trace: the warm configuration again with a live span recorder
     attached, so the cost of the trace plane shows up as a ratio
     against the untraced warm run.

   Results go to stdout and to BENCH_wizard.json for trend tracking
   across PRs. *)

module C = Smart_core
module P = Smart_proto

let servers = 60
let monitors = 16

let host_of i = Printf.sprintf "srv%02d" i
let monitor_of i = Printf.sprintf "mon%02d" i

let report i =
  {
    P.Report.host = host_of i;
    ip = Printf.sprintf "10.9.%d.%d" (i / 250) (i mod 250);
    load1 = 0.05 *. float_of_int (i mod 8);
    load5 = 0.1;
    load15 = 0.1;
    cpu_user = 0.01 *. float_of_int (i mod 50);
    cpu_nice = 0.0;
    cpu_system = 0.01;
    cpu_free = 1.0 -. (0.01 *. float_of_int (i mod 50));
    bogomips = 2000.0 +. (100.0 *. float_of_int (i mod 30));
    mem_total = 512.0;
    mem_used = 12.0 +. float_of_int (i mod 400);
    mem_free = 500.0 -. float_of_int (i mod 400);
    mem_buffers = 16.0;
    mem_cached = 64.0;
    disk_rreq = 1.0;
    disk_rblocks = 8.0;
    disk_wreq = 1.0;
    disk_wblocks = 8.0;
    net_rbytes = 1024.0;
    net_rpackets = 4.0;
    net_tbytes = 2048.0;
    net_tpackets = 6.0;
  }

(* Every monitor reports an entry toward every server, so the peer index
   holds [monitors] candidates per target and the deterministic
   tie-break actually runs. *)
let populate db =
  for i = 0 to servers - 1 do
    C.Status_db.update_sys db
      { P.Records.report = report i; updated_at = 100.0 }
  done;
  for m = 0 to monitors - 1 do
    C.Status_db.update_net db
      {
        P.Records.monitor = monitor_of m;
        entries =
          List.init servers (fun i ->
              {
                P.Records.peer = host_of i;
                delay = 0.001 +. (0.0001 *. float_of_int m);
                bandwidth = 10e6 +. (1e5 *. float_of_int ((m + i) mod 7));
                measured_at = 50.0 +. float_of_int m;
              });
      }
  done;
  C.Status_db.replace_sec db
    {
      P.Records.entries =
        List.init servers (fun i ->
            { P.Records.host = host_of i; level = 1 + (i mod 5) });
    }

let requirement =
  "host_cpu_free > 0.2\n\
   host_memory_free > 10\n\
   monitor_network_bw > 1\n\
   host_security_level >= 1\n\
   order_by = host_memory_free\n"

let encoded_request =
  P.Wizard_msg.encode_request
    {
      P.Wizard_msg.seq = 7;
      server_num = 10;
      option = P.Wizard_msg.Accept_partial;
      requirement;
      trace = Smart_util.Tracelog.root;
    }

let from = { C.Output.host = "client"; port = 4000 }

(* The status writes the churn loop replays, built outside the timed
   region: the cost under measurement is the wizard plus the database
   write, not the synthesis of a report record. *)
let churn_records =
  Array.init servers (fun i ->
      { P.Records.report = report i; updated_at = 100.0 })

(* Requests/sec plus minor-heap words allocated per request over a
   fixed wall-time budget.  [churn] injects one status write before
   every request, invalidating the snapshot the way a pre-index wizard
   rebuilt it unconditionally; its cost is charged to the cold number
   on purpose — that IS the cold path. *)
let measure ~churn ~budget wizard db =
  (* one untimed request to touch every lazy path *)
  ignore (C.Wizard.handle_request wizard ~now:0.0 ~from encoded_request);
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. budget in
  let iterations = ref 0 in
  let minor0 = Gc.minor_words () in
  while Unix.gettimeofday () < deadline do
    if churn then
      C.Status_db.update_sys db churn_records.(!iterations mod servers);
    ignore (C.Wizard.handle_request wizard ~now:1.0 ~from encoded_request);
    incr iterations
  done;
  let minor1 = Gc.minor_words () in
  let elapsed = Unix.gettimeofday () -. t0 in
  ( float_of_int !iterations /. elapsed,
    (minor1 -. minor0) /. float_of_int (max 1 !iterations) )

(* Drift-resistant A/B for the warm-vs-traced comparison: the two
   configurations alternate short slices of the shared budget, so a
   slow phase of a noisy host lands on both sides instead of biasing
   whichever happened to run through it.  The tracing overhead is a
   ratio of these two numbers — on a virtualized host, back-to-back
   whole-budget runs routinely drift more than the effect measured. *)
type ab_acc = {
  mutable ab_iters : int;
  mutable ab_elapsed : float;
  mutable ab_minor : float;
}

let measure_ab ~budget wizard_a wizard_b =
  ignore (C.Wizard.handle_request wizard_a ~now:0.0 ~from encoded_request);
  ignore (C.Wizard.handle_request wizard_b ~now:0.0 ~from encoded_request);
  let slices = 8 in
  let slice = budget /. float_of_int (2 * slices) in
  let run wizard acc =
    let minor0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let deadline = t0 +. slice in
    let n = ref 0 in
    while Unix.gettimeofday () < deadline do
      ignore (C.Wizard.handle_request wizard ~now:1.0 ~from encoded_request);
      incr n
    done;
    acc.ab_iters <- acc.ab_iters + !n;
    acc.ab_elapsed <- acc.ab_elapsed +. (Unix.gettimeofday () -. t0);
    acc.ab_minor <- acc.ab_minor +. (Gc.minor_words () -. minor0)
  in
  let a = { ab_iters = 0; ab_elapsed = 0.0; ab_minor = 0.0 } in
  let b = { ab_iters = 0; ab_elapsed = 0.0; ab_minor = 0.0 } in
  for _ = 1 to slices do
    run wizard_a a;
    run wizard_b b
  done;
  let finish acc =
    ( float_of_int acc.ab_iters /. acc.ab_elapsed,
      acc.ab_minor /. float_of_int (max 1 acc.ab_iters) )
  in
  (finish a, finish b)

(* JSON-safe float: the P² estimators only go non-finite when empty, but
   a crash-proof dump beats a clever one. *)
let json_float x = if Float.is_finite x then Printf.sprintf "%.9f" x else "null"

(* ------------------------------------------------------------------ *)
(* Lossy-plane run: the same request path driven end-to-end through the
   simulator with 25% datagram loss on the client's link, so every
   answer leans on the client's retransmit + backoff machinery.  All on
   virtual time — the numbers are seed-deterministic, not wall-clock. *)

module H = Smart_host

let lossy_loss = 0.25
let lossy_requests = 200

let lossy_run () =
  let c = H.Cluster.create ~seed:11 () in
  let spec name ip =
    { (H.Testbed.spec_of_name "helene") with H.Machine.name; ip }
  in
  let add name ip = H.Cluster.add_machine c (spec name ip) in
  let wiz = add "wiz" "10.0.0.1" in
  let cli = add "cli" "10.0.0.2" in
  let s1 = add "s1" "10.0.0.3" in
  let s2 = add "s2" "10.0.0.4" in
  let sw = H.Cluster.add_switch c ~name:"sw" ~ip:"10.0.0.254" in
  let lan = H.Testbed.lan_conf in
  ignore (H.Cluster.link c ~a:wiz ~b:sw lan);
  ignore
    (H.Cluster.link c ~a:cli ~b:sw
       { lan with Smart_net.Link.loss = lossy_loss });
  ignore (H.Cluster.link c ~a:s1 ~b:sw lan);
  ignore (H.Cluster.link c ~a:s2 ~b:sw lan);
  let d =
    C.Simdriver.deploy c ~monitor:"wiz" ~wizard_host:"wiz"
      ~servers:[ "s1"; "s2" ]
  in
  C.Simdriver.settle ~duration:8.0 d;
  let backoff =
    Smart_util.Backoff.policy ~base:0.05 ~multiplier:2.0 ~max_delay:0.5
      ~jitter:0.0 ()
  in
  let ok = ref 0 in
  for _ = 1 to lossy_requests do
    C.Simdriver.settle ~duration:0.1 d;
    match
      C.Simdriver.request ~attempts:6 ~backoff d ~client:"cli" ~wanted:1
        ~requirement:"host_cpu_free > 0.1\n"
    with
    | Ok _ -> incr ok
    | Error _ -> ()
  done;
  let m = C.Simdriver.metrics d in
  let success_rate = float_of_int !ok /. float_of_int lossy_requests in
  let retries =
    Smart_util.Metrics.counter_value m "client.retries_total"
  in
  (* the attempts histogram counts sends per request; retries per
     request is attempts - 1, a monotone shift, so the quantile moves
     with it *)
  let retry_p95 =
    match Smart_util.Metrics.find m "client.request_attempts" with
    | Some (Smart_util.Metrics.Histogram h) ->
      Float.max 0.0 (h.Smart_util.Metrics.p95 -. 1.0)
    | _ -> Float.nan
  in
  (success_rate, retries, retry_p95)

let run () =
  let mk ?trace ~capacity () =
    let db = C.Status_db.create () in
    populate db;
    let wizard =
      (* the real wall clock feeds wizard.request_latency_seconds; the
         default Sys.time is too coarse for µs-scale requests *)
      C.Wizard.create ~compile_cache_capacity:capacity ~clock:Unix.gettimeofday
        ?trace
        { C.Wizard.mode = C.Wizard.Centralized; groups = None }
        db
    in
    (wizard, db)
  in
  let budget =
    match Sys.getenv_opt "BENCH_BUDGET_S" with
    | Some s -> (try float_of_string s with _ -> 0.5)
    | None -> 0.5
  in
  let cold_wizard, cold_db = mk ~capacity:0 () in
  let cold_rps, cold_allocs = measure ~churn:true ~budget cold_wizard cold_db in
  let warm_wizard, _warm_db =
    mk ~capacity:C.Wizard.default_compile_cache_capacity ()
  in
  (* The traced run drives the same warm path with a live recorder at
     the flight-recorder depth the daemons deploy with (the default
     4096): recording is a ring overwrite, so capacity changes only
     retention, and an oversized ring would measure cache misses on the
     ring itself rather than the record path. *)
  let trace = Smart_util.Tracelog.create ~clock:Unix.gettimeofday () in
  let traced_wizard, _traced_db =
    mk ~trace ~capacity:C.Wizard.default_compile_cache_capacity ()
  in
  let (warm_rps, warm_allocs), (traced_rps, _) =
    measure_ab ~budget warm_wizard traced_wizard
  in
  let trace_overhead = (warm_rps -. traced_rps) /. warm_rps in
  let speedup = warm_rps /. cold_rps in
  let hits, misses = C.Wizard.compile_cache_stats warm_wizard in
  let rhits, rmisses = C.Wizard.result_cache_stats warm_wizard in
  let cold_lat = C.Wizard.request_latency_summary cold_wizard in
  let warm_lat = C.Wizard.request_latency_summary warm_wizard in
  let traced_lat = C.Wizard.request_latency_summary traced_wizard in
  let us x = Fmt.str "%.1f" (x *. 1e6) in
  let tab =
    Smart_util.Tabular.create
      ~title:
        (Printf.sprintf "wizard request throughput (%d servers, %d monitors)"
           servers monitors)
      ~header:
        [
          "configuration"; "requests/s"; "p50 µs"; "p95 µs"; "p99 µs";
          "snapshot rebuilds";
        ]
  in
  Smart_util.Tabular.add_row tab
    [
      "cold (no caches, churning db)";
      Fmt.str "%.0f" cold_rps;
      us cold_lat.Smart_util.Metrics.p50;
      us cold_lat.Smart_util.Metrics.p95;
      us cold_lat.Smart_util.Metrics.p99;
      string_of_int (C.Wizard.snapshot_rebuilds cold_wizard);
    ];
  Smart_util.Tabular.add_row tab
    [
      "warm (compile + snapshot cache)";
      Fmt.str "%.0f" warm_rps;
      us warm_lat.Smart_util.Metrics.p50;
      us warm_lat.Smart_util.Metrics.p95;
      us warm_lat.Smart_util.Metrics.p99;
      string_of_int (C.Wizard.snapshot_rebuilds warm_wizard);
    ];
  Smart_util.Tabular.add_row tab
    [
      "warm + tracing (span recorder on)";
      Fmt.str "%.0f" traced_rps;
      us traced_lat.Smart_util.Metrics.p50;
      us traced_lat.Smart_util.Metrics.p95;
      us traced_lat.Smart_util.Metrics.p99;
      string_of_int (C.Wizard.snapshot_rebuilds traced_wizard);
    ];
  Smart_util.Tabular.print tab;
  Fmt.pr
    "speedup: %.1fx (compile cache: %d hits / %d misses; result cache: %d \
     hits / %d misses)@."
    speedup hits misses rhits rmisses;
  Fmt.pr "tracing overhead: %.1f%% (%d spans recorded)@."
    (100.0 *. trace_overhead)
    (Smart_util.Tracelog.total_recorded trace);
  Fmt.pr "allocation: cold %.0f minor words/request, warm %.0f@."
    cold_allocs warm_allocs;
  let success_rate, lossy_retries, retry_p95 = lossy_run () in
  Fmt.pr
    "lossy plane (%.0f%% datagram loss, %d requests): success rate %.3f, \
     %d retransmits, retry p95 %.1f@."
    (100.0 *. lossy_loss) lossy_requests success_rate lossy_retries retry_p95;
  let oc = open_out "BENCH_wizard.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"wizard_request_throughput\",\n\
    \  \"servers\": %d,\n\
    \  \"monitors\": %d,\n\
    \  \"budget_s\": %.2f,\n\
    \  \"cold_requests_per_sec\": %.1f,\n\
    \  \"warm_requests_per_sec\": %.1f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"cold_latency_p50_s\": %s,\n\
    \  \"cold_latency_p95_s\": %s,\n\
    \  \"cold_latency_p99_s\": %s,\n\
    \  \"warm_latency_p50_s\": %s,\n\
    \  \"warm_latency_p95_s\": %s,\n\
    \  \"warm_latency_p99_s\": %s,\n\
    \  \"warm_traced_requests_per_sec\": %.1f,\n\
    \  \"warm_traced_latency_p50_s\": %s,\n\
    \  \"warm_traced_latency_p95_s\": %s,\n\
    \  \"warm_traced_latency_p99_s\": %s,\n\
    \  \"trace_overhead_fraction\": %.4f,\n\
    \  \"trace_overhead_spans_recorded\": %d,\n\
    \  \"cold_allocs_per_req\": %.1f,\n\
    \  \"warm_allocs_per_req\": %.1f,\n\
    \  \"warm_compile_cache_hits\": %d,\n\
    \  \"warm_compile_cache_misses\": %d,\n\
    \  \"warm_result_cache_hits\": %d,\n\
    \  \"warm_result_cache_misses\": %d,\n\
    \  \"warm_snapshot_rebuilds\": %d,\n\
    \  \"lossy_datagram_loss\": %.2f,\n\
    \  \"lossy_requests\": %d,\n\
    \  \"request_success_rate\": %.4f,\n\
    \  \"lossy_retries_total\": %d,\n\
    \  \"retry_p95\": %s\n\
     }\n"
    servers monitors budget cold_rps warm_rps speedup
    (json_float cold_lat.Smart_util.Metrics.p50)
    (json_float cold_lat.Smart_util.Metrics.p95)
    (json_float cold_lat.Smart_util.Metrics.p99)
    (json_float warm_lat.Smart_util.Metrics.p50)
    (json_float warm_lat.Smart_util.Metrics.p95)
    (json_float warm_lat.Smart_util.Metrics.p99)
    traced_rps
    (json_float traced_lat.Smart_util.Metrics.p50)
    (json_float traced_lat.Smart_util.Metrics.p95)
    (json_float traced_lat.Smart_util.Metrics.p99)
    trace_overhead
    (Smart_util.Tracelog.total_recorded trace)
    cold_allocs warm_allocs
    hits misses rhits rmisses
    (C.Wizard.snapshot_rebuilds warm_wizard)
    lossy_loss lossy_requests success_rate lossy_retries
    (json_float retry_p95);
  close_out oc;
  Fmt.pr "wrote BENCH_wizard.json@."
