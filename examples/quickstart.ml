(* Quickstart: the Smart TCP socket library on real sockets.

   Everything runs in this one process on 127.0.0.1 — three "servers"
   with probe daemons reading the actual /proc of this machine, the
   monitor machine, the wizard machine, and a client that asks for two
   servers with free memory and a security clearance, then talks to the
   returned TCP sockets.

   On a real deployment each daemon would run on its own machine via the
   `smart` CLI; the code path is identical. *)

let requirement =
  "# pick servers with a little headroom and clearance >= 3\n\
   host_memory_free > 16\n\
   host_system_load1 < 50\n\
   host_security_level >= 3\n"

let () =
  let book = Smart_realnet.Addr_book.create () in
  List.iter
    (fun h -> ignore (Smart_realnet.Addr_book.register_loopback book ~host:h))
    [ "monitor"; "wizard"; "web-1"; "web-2"; "web-3" ];

  (* wizard machine: receiver + wizard *)
  let wizard =
    Smart_realnet.Wizard_daemon.create book
      {
        Smart_realnet.Wizard_daemon.host = "wizard";
        mode = Smart_core.Wizard.Centralized;
        staleness_threshold = infinity;
        admission = None;
      }
  in
  Smart_realnet.Wizard_daemon.start wizard;

  (* monitor machine: sysmon + netmon + secmon + transmitter *)
  let monitor =
    Smart_realnet.Monitor_daemon.create book
      {
        Smart_realnet.Monitor_daemon.host = "monitor";
        wizard_host = "wizard";
        mode = Smart_core.Transmitter.Centralized;
        probe_interval = 0.3;
        transmit_interval = 0.3;
        netmon_targets = [ "web-1"; "web-2"; "web-3" ];
        security_log = "web-1 5\nweb-2 4\nweb-3 1   # web-3 is untrusted\n";
      }
  in
  Smart_realnet.Monitor_daemon.start monitor;

  (* three servers: probe daemon + the TCP service the client will use *)
  let servers =
    List.mapi
      (fun i host ->
        let probe =
          Smart_realnet.Probe_daemon.create book
            {
              Smart_realnet.Probe_daemon.host;
              ip = Printf.sprintf "10.0.0.%d" (i + 1);
              monitor_host = "monitor";
              interval = 0.3;
              proc = Smart_realnet.Proc_reader.default;
              iface = None;
            }
        in
        Smart_realnet.Probe_daemon.start probe;
        let service = Smart_realnet.Service.create book ~name:host in
        Smart_realnet.Service.start service;
        (probe, service))
      [ "web-1"; "web-2"; "web-3" ]
  in

  (* let a couple of probe reports flow through *)
  Thread.delay 1.2;

  Fmt.pr "requirement:@.%s@." requirement;
  (match
     Smart_realnet.Client_io.request_sockets book ~wizard_host:"wizard"
       ~wanted:2 ~requirement ()
   with
  | Error e -> Fmt.pr "request failed: %a@." Smart_core.Client.pp_error e
  | Ok connected ->
    Fmt.pr "got %d connected socket(s):@." (List.length connected);
    List.iter
      (fun (s : Smart_realnet.Client_io.connected_server) ->
        Smart_realnet.Service.write_line s.Smart_realnet.Client_io.socket
          "ECHO hello from the smart socket";
        match
          Smart_realnet.Service.read_line_opt
            s.Smart_realnet.Client_io.socket
        with
        | Some line ->
          Fmt.pr "  %s replied: %s@." s.Smart_realnet.Client_io.host line
        | None -> Fmt.pr "  %s: no reply@." s.Smart_realnet.Client_io.host)
      connected;
    Smart_realnet.Client_io.close_all connected;
    (* web-3 (clearance 1) must never be among the candidates *)
    if
      List.exists
        (fun (s : Smart_realnet.Client_io.connected_server) ->
          s.Smart_realnet.Client_io.host = "web-3")
        connected
    then Fmt.pr "BUG: untrusted server selected!@."
    else Fmt.pr "untrusted web-3 was correctly excluded@.");

  List.iter
    (fun (probe, service) ->
      Smart_realnet.Probe_daemon.stop probe;
      Smart_realnet.Service.stop service)
    servers;
  Smart_realnet.Monitor_daemon.stop monitor;
  Smart_realnet.Wizard_daemon.stop wizard
