(* Causal tracing demo on the simulated ICPP-2005 testbed.

   Deploys the full stack (probes on all 11 machines, monitors +
   transmitter on dalmatian, receiver + wizard on dalmatian), lets the
   status plane settle, then issues one smart-socket request from sagit.
   The deployment-wide tracelog records every component's spans with
   propagated contexts, so the run yields:

   - trace.json — the whole timeline as Chrome trace-event JSON (open
     in Perfetto or chrome://tracing), packet events merged in;
   - stdout    — the request's span tree (client -> wizard phases) and
     one report-pipeline tree (probe -> sysmon -> transmitter ->
     receiver -> commit), reconstructed purely from parent links.

   Usage: trace_demo [seed]   (default seed 7; same seed, same bytes) *)

module T = Smart_util.Tracelog

let requirement = "host_cpu_bogomips > 4000\norder_by = host_memory_free\n"

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 7
  in
  let sim_trace = Smart_sim.Trace.create ~capacity:65536 () in
  let cluster = Smart_host.Testbed.icpp2005 ~seed ~trace:sim_trace () in
  let d =
    Smart_core.Simdriver.deploy cluster ~monitor:"dalmatian"
      ~wizard_host:"dalmatian" ~servers:Smart_host.Testbed.machine_names
  in
  Fmt.pr "settling the status plane (8 virtual seconds)...@.";
  Smart_core.Simdriver.settle ~duration:8.0 d;
  (match
     Smart_core.Simdriver.request d ~client:"sagit" ~wanted:2 ~requirement
   with
  | Ok servers ->
    Fmt.pr "wizard answered: %s@." (String.concat ", " servers)
  | Error e -> Fmt.pr "request failed: %a@." Smart_core.Client.pp_error e);
  let log = Smart_core.Simdriver.tracelog d in
  let entries = T.entries log in
  let tree_of name =
    match
      List.filter (fun (e : T.entry) -> String.equal e.T.name name) entries
    with
    | [] -> Fmt.pr "no %s span recorded@." name
    | e :: _ -> Fmt.pr "%s@." (T.render_tree log ~trace_id:e.T.trace_id)
  in
  Fmt.pr "@.=== the request's span tree ===@.";
  tree_of "client.request";
  Fmt.pr "=== one report-pipeline span tree ===@.";
  tree_of "receiver.commit";
  let json = Smart_core.Simdriver.trace_json d in
  let oc = open_out "trace.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote trace.json (%d spans recorded, %d retained) — load it in \
          Perfetto / chrome://tracing@."
    (T.total_recorded log)
    (List.length entries)
