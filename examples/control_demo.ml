(* Seeded closed-loop control run on a federated deployment (DESIGN.md
   §14): all three adaptive control loops are armed at once on a
   two-shard federation while a fault plan makes servers flap and a
   client keeps requesting.

   - adaptive probes: each probe self-schedules on its effective report
     interval, derived from the spread of its load1 sketch;
   - adaptive quarantine: each sysmon tunes its flap threshold from the
     fleet's flap-score sketch;
   - adaptive staleness: each wizard derives degraded mode from its
     inter-update gap sketch.

   Meanwhile the sketch plane runs end to end: shard wizards accumulate
   subquery latencies in private mergeable sketches, the uplinks ship
   them to the root as Sketch_db frames, and the root serves merged
   deployment-wide p50/p95/p99 to a SMART-METRICS scrape.

   Every control decision is a metered counter bump plus a trace
   instant, so the run stays a function of the seed alone: two runs with
   the same seed write byte-identical control_metrics.txt and
   control_trace.json (CI diffs them).

   Usage: control_demo [seed]   (default seed 7) *)

module C = Smart_core
module H = Smart_host
module F = Smart_sim.Faults

let build_world seed =
  let c = H.Cluster.create ~seed () in
  let spec name ip =
    { (H.Testbed.spec_of_name "helene") with H.Machine.name; ip }
  in
  let add name ip = H.Cluster.add_machine c (spec name ip) in
  let root = add "root" "10.0.0.1" in
  let cli = add "cli" "10.0.0.2" in
  let shard_a = add "s-a" "10.1.0.1" in
  let mon_a = add "mon-a" "10.1.0.2" in
  let a1 = add "a1" "10.1.0.3" in
  let a2 = add "a2" "10.1.0.4" in
  let shard_b = add "s-b" "10.2.0.1" in
  let mon_b = add "mon-b" "10.2.0.2" in
  let b1 = add "b1" "10.2.0.3" in
  let b2 = add "b2" "10.2.0.4" in
  let sw_a = H.Cluster.add_switch c ~name:"sw-a" ~ip:"10.1.0.254" in
  let sw_b = H.Cluster.add_switch c ~name:"sw-b" ~ip:"10.2.0.254" in
  let lan = H.Testbed.lan_conf in
  List.iter
    (fun n -> ignore (H.Cluster.link c ~a:n ~b:sw_a lan))
    [ root; cli; shard_a; mon_a; a1; a2 ];
  List.iter
    (fun n -> ignore (H.Cluster.link c ~a:n ~b:sw_b lan))
    [ shard_b; mon_b; b1; b2 ];
  ignore (H.Cluster.link c ~a:sw_a ~b:sw_b lan);
  let config =
    {
      C.Simdriver.default_config with
      C.Simdriver.probe_interval = 1.0;
      transmit_interval = 0.5;
      wizard_staleness = 3.0;
      adaptive_probes = true;
      adaptive_quarantine = true;
      adaptive_staleness = true;
    }
  in
  let d =
    C.Simdriver.deploy_federation ~config c ~root_host:"root"
      ~shards:
        [
          ("s-a", [ ("mon-a", [ "a1"; "a2" ]) ]);
          ("s-b", [ ("mon-b", [ "b1"; "b2" ]) ]);
        ]
  in
  (c, d)

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 7
  in
  let c, d = build_world seed in
  Fmt.pr "settling the status plane (8 virtual seconds)...@.";
  C.Simdriver.settle ~duration:8.0 d;
  let base = H.Cluster.now c in
  (* crash/restart cycles long enough to expire the victims — with
     adaptive probes the sysmon tolerates the slowest cadence (2 s x 3
     missed intervals = 6 s), so each crash window is 7 s of silence —
     so flap scores accumulate and the quarantine loop has a
     distribution to tune from *)
  let plan =
    List.concat
      (List.mapi
         (fun i (ha, hb) ->
           let t0 = base +. (12.0 *. float_of_int i) in
           [
             { F.at = t0 +. 1.0; action = F.Crash_node ha };
             { F.at = t0 +. 1.0; action = F.Crash_node hb };
             { F.at = t0 +. 8.0; action = F.Restart_node ha };
             { F.at = t0 +. 8.0; action = F.Restart_node hb };
           ])
         [
           ("a1", "b1"); ("a2", "b2"); ("a1", "b1"); ("a2", "b2");
           ("a1", "b1"); ("a2", "b2"); ("a1", "b1"); ("a2", "b2");
         ])
  in
  Fmt.pr "@.fault plan (virtual seconds after settling):@.";
  List.iter
    (fun { F.at; action } ->
      Fmt.pr "  +%5.1fs  %s@." (at -. base) (F.action_kind action))
    plan;
  ignore (C.Simdriver.install_faults d plan);
  let ok = ref 0 and total = 180 in
  for _ = 1 to total do
    C.Simdriver.settle ~duration:0.6 d;
    match
      C.Simdriver.request d ~client:"cli" ~wanted:2
        ~requirement:"host_cpu_free > 0.1\n"
    with
    | Ok _ -> incr ok
    | Error _ -> ()
  done;
  C.Simdriver.settle ~duration:10.0 d;
  let m = C.Simdriver.metrics d in
  let cv name = Smart_util.Metrics.counter_value m name in
  let gv name = Smart_util.Metrics.gauge_value m name in
  Fmt.pr "@.requests answered: %d/%d@." !ok total;
  Fmt.pr "probe interval adaptations: %d (interval now %.3f s)@."
    (cv "probe.interval_adaptations_total")
    (gv "probe.report_interval_seconds");
  Fmt.pr "sysmon threshold adaptations: %d (threshold now %.0f)@."
    (cv "sysmon.threshold_adaptations_total")
    (gv "sysmon.effective_flap_threshold");
  Fmt.pr "wizard staleness adaptations: %d (threshold now %.3f s)@."
    (cv "wizard.staleness_adaptations_total")
    (gv "wizard.staleness_threshold_seconds");
  Fmt.pr "sketch batches received at root: %d (merges %d)@."
    (cv "federation.sketches_received_total")
    (cv "federation.sketch_updates_total");
  Fmt.pr "deployment-wide latency p50/p95/p99: %.6f / %.6f / %.6f s@."
    (gv "federation.fed_latency_p50_s")
    (gv "federation.fed_latency_p95_s")
    (gv "federation.fed_latency_p99_s");
  (match C.Simdriver.scrape_metrics d ~client:"cli" with
  | Ok dump ->
    let lines = String.split_on_char '\n' dump in
    let fed =
      List.filter
        (fun l ->
          String.length l >= 24
          && String.equal (String.sub l 0 24) "federation.fed_latency_p")
        lines
    in
    Fmt.pr "@.SMART-METRICS scrape of the root, federation quantiles:@.";
    List.iter (fun l -> Fmt.pr "  %s@." l) fed
  | Error e -> Fmt.pr "@.SMART-METRICS scrape failed: %s@." e);
  let dump path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  dump "control_metrics.txt" (Smart_util.Metrics.to_text m);
  dump "control_trace.json" (C.Simdriver.trace_json d);
  Fmt.pr
    "@.wrote control_metrics.txt and control_trace.json — same seed, same \
     bytes@."
