(* Seeded session-plane chaos run (DESIGN.md §15).

   Builds four servers behind one switch plus a wizard, a monitor and a
   client, then drives six long-lived sessions through a fault plan
   aimed at the servers themselves:

   - s1 crashes mid-run and restarts 10 virtual seconds later;
   - s2 is partitioned and healed;

   so sessions bound to the dead servers must requeue their in-flight
   work, re-ask the wizard and migrate mid-session.  The run prints the
   session ledger — every session must survive, at least one migration
   must have happened, and nothing may be lost — then writes:

   - session_chaos_metrics.txt — the full metrics registry in text
     exposition format (the session.* and wizard.admission_* families
     included);
   - session_chaos_trace.json  — the span ring as Chrome trace-event
     JSON, the session.migrate spans parented on their origin
     client.request.

   Both files are functions of the seed alone: two runs with the same
   seed are byte-identical (CI diffs them).

   Usage: session_chaos_demo [seed]   (default seed 11) *)

module C = Smart_core
module H = Smart_host
module F = Smart_sim.Faults

let build_world seed =
  let c = H.Cluster.create ~seed () in
  let spec name ip =
    { (H.Testbed.spec_of_name "helene") with H.Machine.name; ip }
  in
  let add name ip = H.Cluster.add_machine c (spec name ip) in
  let wiz = add "wiz" "10.0.0.1" in
  let cli = add "cli" "10.0.0.2" in
  let mon = add "mon" "10.0.0.3" in
  let servers =
    List.init 4 (fun i ->
        add (Printf.sprintf "s%d" (i + 1)) (Printf.sprintf "10.0.1.%d" (i + 1)))
  in
  let sw = H.Cluster.add_switch c ~name:"sw" ~ip:"10.0.0.254" in
  List.iter
    (fun n -> ignore (H.Cluster.link c ~a:n ~b:sw H.Testbed.lan_conf))
    (wiz :: cli :: mon :: servers);
  let config =
    {
      C.Simdriver.default_config with
      C.Simdriver.transmit_interval = 0.5;
      frame_crc = true;
      wizard_staleness = 3.0;
    }
  in
  let d =
    C.Simdriver.deploy ~config c ~monitor:"mon" ~wizard_host:"wiz"
      ~servers:[ "s1"; "s2"; "s3"; "s4" ]
  in
  (c, d)

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 11
  in
  let c, d = build_world seed in
  Fmt.pr "settling the status plane (8 virtual seconds)...@.";
  C.Simdriver.settle ~duration:8.0 d;
  let base = H.Cluster.now c in
  let plan =
    [
      { F.at = base +. 4.3; action = F.Crash_node "s1" };
      { F.at = base +. 8.1; action = F.Partition_host "s2" };
      { F.at = base +. 14.2; action = F.Restart_node "s1" };
      { F.at = base +. 18.1; action = F.Heal_host "s2" };
    ]
  in
  Fmt.pr "@.fault plan (virtual seconds after settling):@.";
  List.iter
    (fun { F.at; action } ->
      Fmt.pr "  +%5.1fs  %s@." (at -. base) (F.action_kind action))
    plan;
  ignore (C.Simdriver.install_faults d plan);
  let r =
    C.Simdriver.run_sessions d
      ~clients:[ ("cli", 6) ]
      ~requirement:"host_cpu_free > 0.05\norder_by = host_memory_free\n"
      ~work_interval:0.5 ~duration:20.0
  in
  let m = C.Simdriver.metrics d in
  Fmt.pr "@.sessions survived: %d/%d@." r.C.Simdriver.survived
    r.C.Simdriver.sessions;
  Fmt.pr "mid-session migrations: %d@." r.C.Simdriver.migrations;
  Fmt.pr "work issued / completed / requeued / lost: %d / %d / %d / %d@."
    r.C.Simdriver.work_issued r.C.Simdriver.work_completed
    r.C.Simdriver.work_requeued r.C.Simdriver.work_lost;
  let dump path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  dump "session_chaos_metrics.txt" (Smart_util.Metrics.to_text m);
  dump "session_chaos_trace.json" (C.Simdriver.trace_json d);
  Fmt.pr
    "@.wrote session_chaos_metrics.txt and session_chaos_trace.json — same \
     seed, same bytes@.";
  if
    r.C.Simdriver.survived <> r.C.Simdriver.sessions
    || r.C.Simdriver.migrations < 1
    || r.C.Simdriver.work_lost <> 0
  then begin
    Fmt.epr "session chaos gate failed@.";
    exit 1
  end
