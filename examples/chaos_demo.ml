(* Seeded chaos run on a two-group simulated deployment.

   Builds two server groups behind their own switches (mon-a/a1/a2 and
   mon-b/b1/b2), a wizard and a client, then arms a fault plan while the
   client fires 100 smart-socket requests:

   - 2% frame corruption on every transmitter stream (CRC trailers on,
     so the receiver detects the damage and resynchronises);
   - the wizard-feed transmitter host mon-a crashes mid-stream and
     restarts 13 virtual seconds later;
   - the other group's monitor mon-b is partitioned and healed, the
     outages overlapping long enough that the wizard's receiver feed
     goes fully quiet and degraded mode engages.

   Every run prints the fault plan, the request outcome, and the
   recovery counters, then writes:

   - chaos_metrics.txt — the full metrics registry in text exposition
     format;
   - chaos_trace.json  — the deployment's span ring as Chrome
     trace-event JSON.

   Both files are functions of the seed alone: two runs with the same
   seed are byte-identical (CI diffs them), a different seed reshuffles
   the chaos.

   Usage: chaos_demo [seed]   (default seed 3) *)

module C = Smart_core
module H = Smart_host
module F = Smart_sim.Faults

let build_world seed =
  let c = H.Cluster.create ~seed () in
  let spec name ip =
    { (H.Testbed.spec_of_name "helene") with H.Machine.name; ip }
  in
  let add name ip = H.Cluster.add_machine c (spec name ip) in
  let wiz = add "wiz" "10.0.0.1" in
  let cli = add "cli" "10.0.0.2" in
  let mon_a = add "mon-a" "10.1.0.1" in
  let a1 = add "a1" "10.1.0.2" in
  let a2 = add "a2" "10.1.0.3" in
  let mon_b = add "mon-b" "10.2.0.1" in
  let b1 = add "b1" "10.2.0.2" in
  let b2 = add "b2" "10.2.0.3" in
  let sw_a = H.Cluster.add_switch c ~name:"sw-a" ~ip:"10.1.0.254" in
  let sw_b = H.Cluster.add_switch c ~name:"sw-b" ~ip:"10.2.0.254" in
  let lan = H.Testbed.lan_conf in
  List.iter
    (fun n -> ignore (H.Cluster.link c ~a:n ~b:sw_a lan))
    [ wiz; cli; mon_a; a1; a2 ];
  List.iter
    (fun n -> ignore (H.Cluster.link c ~a:n ~b:sw_b lan))
    [ mon_b; b1; b2 ];
  ignore (H.Cluster.link c ~a:sw_a ~b:sw_b lan);
  let config =
    {
      C.Simdriver.default_config with
      C.Simdriver.transmit_interval = 0.5;
      frame_crc = true;
      wizard_staleness = 3.0;
    }
  in
  let d =
    C.Simdriver.deploy_groups ~config c ~wizard_host:"wiz"
      ~groups:[ ("mon-a", [ "a1"; "a2" ]); ("mon-b", [ "b1"; "b2" ]) ]
  in
  (c, d)

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 3
  in
  let c, d = build_world seed in
  Fmt.pr "settling the status plane (8 virtual seconds)...@.";
  C.Simdriver.settle ~duration:8.0 d;
  let base = H.Cluster.now c in
  let plan =
    [
      { F.at = base +. 0.1; action = F.Corrupt_frames 0.02 };
      { F.at = base +. 5.0; action = F.Crash_node "mon-a" };
      { F.at = base +. 8.0; action = F.Partition_host "mon-b" };
      { F.at = base +. 18.0; action = F.Restart_node "mon-a" };
      { F.at = base +. 22.0; action = F.Heal_host "mon-b" };
    ]
  in
  Fmt.pr "@.fault plan (virtual seconds after settling):@.";
  List.iter
    (fun { F.at; action } ->
      Fmt.pr "  +%5.1fs  %s@." (at -. base) (F.action_kind action))
    plan;
  ignore (C.Simdriver.install_faults d plan);
  let ok = ref 0 and total = 100 in
  for _ = 1 to total do
    C.Simdriver.settle ~duration:0.4 d;
    match
      C.Simdriver.request d ~client:"cli" ~wanted:2
        ~requirement:"host_cpu_free > 0.1\n"
    with
    | Ok _ -> incr ok
    | Error _ -> ()
  done;
  C.Simdriver.settle ~duration:10.0 d;
  let m = C.Simdriver.metrics d in
  let cv name = Smart_util.Metrics.counter_value m name in
  Fmt.pr "@.requests answered: %d/%d@." !ok total;
  Fmt.pr "frames corrupted in flight: %d@."
    (cv "faults.corrupted_messages_total");
  Fmt.pr "receiver resyncs / decode errors: %d / %d@."
    (cv "receiver.resyncs_total")
    (cv "receiver.decode_errors_total");
  Fmt.pr "transmitter send failures / resends: %d / %d@."
    (cv "transmitter.send_failures_total")
    (cv "transmitter.resends_total");
  Fmt.pr "degraded wizard replies: %d@." (cv "wizard.degraded_replies_total");
  Fmt.pr "servers mirrored after recovery: %d@."
    (C.Status_db.sys_count (C.Simdriver.db_wizard d));
  let dump path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  dump "chaos_metrics.txt" (Smart_util.Metrics.to_text m);
  dump "chaos_trace.json" (C.Simdriver.trace_json d);
  Fmt.pr
    "@.wrote chaos_metrics.txt and chaos_trace.json — same seed, same \
     bytes@."
