.PHONY: all build test bench lint check doc clean

all: build

build:
	dune build

test:
	dune runtest

# Wizard request-throughput and federated fan-out benchmarks (write
# BENCH_wizard.json and BENCH_federation.json).
bench:
	dune exec bench/main.exe -- wizard federation sessions

# Static analysis over the typed trees (see ANALYSIS.md); exits
# non-zero on any error not excused by lint.allow.  Needs the cmts,
# hence the build dependency.  --strict turns stale allowlist entries
# into errors so lint.allow can only shrink; the JSON twin of the
# report lands in _build/smartlint.json (CI uploads it as an
# artifact).
lint: build
	dune exec tools/smartlint/main.exe -- --root . --strict \
	  --json-out _build/smartlint.json

# API docs; CI keeps this warning-clean.
doc:
	dune build @doc

# What CI runs: full build, the whole test tree, the wizard bench as a
# smoke test of the request path, and the lint gate (plus `make doc`,
# its own step).
check: build test bench lint

clean:
	dune clean
