.PHONY: all build test bench check doc clean

all: build

build:
	dune build

test:
	dune runtest

# Wizard request-throughput benchmark (writes BENCH_wizard.json).
bench:
	dune exec bench/main.exe -- wizard

# API docs; CI keeps this warning-clean.
doc:
	dune build @doc

# What CI runs: full build, the whole test tree, and the wizard bench as
# a smoke test of the request path (plus `make doc`, its own step).
check: build test bench

clean:
	dune clean
