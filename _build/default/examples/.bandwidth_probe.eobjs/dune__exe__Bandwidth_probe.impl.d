examples/bandwidth_probe.ml: Fmt List Smart_host Smart_measure Smart_util
