examples/matmul_cluster.mli:
