examples/grid_groups.mli:
