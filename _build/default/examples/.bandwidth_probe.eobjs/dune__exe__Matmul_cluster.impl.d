examples/matmul_cluster.ml: Fmt List Smart_apps Smart_core Smart_host String
