examples/quickstart.ml: Fmt List Printf Smart_core Smart_realnet Thread
