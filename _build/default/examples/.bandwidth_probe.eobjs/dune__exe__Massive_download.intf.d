examples/massive_download.mli:
