examples/quickstart.mli:
