examples/bandwidth_probe.mli:
