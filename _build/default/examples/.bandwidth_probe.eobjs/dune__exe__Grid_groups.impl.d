examples/grid_groups.ml: Fmt List Smart_core Smart_host Smart_net Smart_proto Smart_util String
