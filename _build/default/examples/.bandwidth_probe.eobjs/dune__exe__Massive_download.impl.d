examples/massive_download.ml: Fmt List Smart_apps Smart_core Smart_host Smart_proto Smart_util String
