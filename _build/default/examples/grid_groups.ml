(* Example: a multi-group GRID deployment (Fig 3.8).

   Three server groups — a local lab, a campus cluster and a remote
   site — each with its own monitor machine.  The network monitors
   probe one another sequentially and publish the (delay, bandwidth)
   mesh of Table 3.4; the wizard binds monitor_network_* per group so a
   single requirement can trade computation power against connectivity
   across the whole grid. *)

module C = Smart_core
module H = Smart_host

let mk ?(bogomips = 3394.76) name ip matmul_rate =
  {
    (H.Testbed.spec_of_name "helene") with
    H.Machine.name;
    ip;
    matmul_rate;
    bogomips;
  }

let () =
  let c = H.Cluster.create ~seed:17 () in
  let add spec = H.Cluster.add_machine c spec in
  (* group 1: the local lab *)
  let mon1 = add (mk ~bogomips:1730.15 "lab-mon" "10.1.0.1" 18e6) in
  let lab1 = add (mk ~bogomips:1730.15 "lab-1" "10.1.0.2" 18e6) in
  let lab2 = add (mk ~bogomips:1730.15 "lab-2" "10.1.0.3" 18e6) in
  (* group 2: the campus cluster, faster machines, 2 ms away *)
  let mon2 = add (mk "campus-mon" "10.2.0.1" 30e6) in
  let cam1 = add (mk "campus-1" "10.2.0.2" 30e6) in
  let cam2 = add (mk "campus-2" "10.2.0.3" 30e6) in
  (* group 3: a remote site, fast machines behind a thin 4 Mbps pipe *)
  let mon3 = add (mk ~bogomips:4771.02 "remote-mon" "10.3.0.1" 40e6) in
  let rem1 = add (mk ~bogomips:4771.02 "remote-1" "10.3.0.2" 40e6) in
  let rem2 = add (mk ~bogomips:4771.02 "remote-2" "10.3.0.3" 40e6) in
  let sw1 = H.Cluster.add_switch c ~name:"sw1" ~ip:"10.1.0.254" in
  let sw2 = H.Cluster.add_switch c ~name:"sw2" ~ip:"10.2.0.254" in
  let sw3 = H.Cluster.add_switch c ~name:"sw3" ~ip:"10.3.0.254" in
  let lan = H.Testbed.lan_conf in
  List.iter (fun n -> ignore (H.Cluster.link c ~a:n ~b:sw1 lan)) [ mon1; lab1; lab2 ];
  List.iter (fun n -> ignore (H.Cluster.link c ~a:n ~b:sw2 lan)) [ mon2; cam1; cam2 ];
  List.iter (fun n -> ignore (H.Cluster.link c ~a:n ~b:sw3 lan)) [ mon3; rem1; rem2 ];
  let wan ~mbps ~ms =
    {
      Smart_net.Link.capacity = mbps *. 1e6 /. 8.0;
      prop_delay = ms /. 2000.0;
      jitter = 30e-6;
      loss = 0.0;
    }
  in
  ignore (H.Cluster.link c ~a:sw1 ~b:sw2 (wan ~mbps:100.0 ~ms:2.0));
  ignore (H.Cluster.link c ~a:sw2 ~b:sw3 (wan ~mbps:4.0 ~ms:30.0));

  let d =
    C.Simdriver.deploy_groups c ~wizard_host:"lab-mon"
      ~groups:
        [
          ("lab-mon", [ "lab-1"; "lab-2" ]);
          ("campus-mon", [ "campus-1"; "campus-2" ]);
          ("remote-mon", [ "remote-1"; "remote-2" ]);
        ]
  in
  C.Simdriver.settle ~duration:8.0 d;
  ignore (C.Simdriver.refresh_netmon d);

  Fmt.pr "network monitor mesh (Table 3.4 layout):@.";
  List.iter
    (fun (r : Smart_proto.Records.net_record) ->
      List.iter
        (fun (e : Smart_proto.Records.net_entry) ->
          Fmt.pr "  %-12s -> %-12s %6.2f ms  %6.2f Mbps@."
            r.Smart_proto.Records.monitor e.Smart_proto.Records.peer
            (Smart_util.Units.s_to_ms e.Smart_proto.Records.delay)
            (Smart_util.Units.bytes_per_sec_to_mbps
               e.Smart_proto.Records.bandwidth))
        r.Smart_proto.Records.entries)
    (C.Simdriver.all_netmon_records d);

  let ask ?(wanted = 6) label requirement =
    match C.Simdriver.request d ~client:"lab-1" ~wanted ~requirement with
    | Ok servers -> Fmt.pr "@.%s@.  -> %s@." label (String.concat ", " servers)
    | Error e -> Fmt.pr "@.%s@.  -> error: %a@." label C.Client.pp_error e
  in
  ask "pure compute (every idle server across the grid qualifies):"
    "host_cpu_free > 0.5\n";
  ask "data-heavy job: at least 50 Mbps toward us (remote site drops out):"
    "host_cpu_free > 0.5\nmonitor_network_bw > 50\n";
  ask "latency-sensitive job: delay under 5 ms (remote site drops out):"
    "host_cpu_free > 0.5\nmonitor_network_delay < 5\n";
  (* the Ch. 6 extension: rank candidates instead of taking scan order *)
  ask ~wanted:2 "the two fastest CPUs anywhere (order_by ranking):"
    "host_cpu_free > 0.5\norder_by = host_cpu_bogomips\n"
