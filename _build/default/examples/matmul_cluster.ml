(* Example: distributed matrix multiplication on the simulated 11-machine
   testbed of Table 5.1, comparing random server selection against the
   Smart socket library (the §5.3.1 experiment, scaled to run quickly).

   The smart path exercises the full stack: probes report over the
   simulated network, the wizard evaluates the requirement, and the
   returned servers execute the block tasks. *)

let requirement =
  "(host_cpu_bogomips > 4000) && (host_cpu_free > 0.9) && \
   (host_memory_free > 5)\n"

let () =
  let n = 1500 and blk = 600 in
  (* smart selection on a deployed stack *)
  let c = Smart_host.Testbed.icpp2005 () in
  let deployment =
    Smart_core.Simdriver.deploy c ~monitor:"dalmatian" ~wizard_host:"dalmatian"
      ~servers:Smart_host.Testbed.machine_names
  in
  Smart_core.Simdriver.settle ~duration:8.0 deployment;
  let smart_servers =
    match
      Smart_core.Simdriver.request deployment ~client:"sagit" ~wanted:2
        ~requirement
    with
    | Ok servers -> servers
    | Error e -> Fmt.failwith "selection failed: %a" Smart_core.Client.pp_error e
  in
  Fmt.pr "requirement:@.  %s@." (String.trim requirement);
  Fmt.pr "smart selection: %s@." (String.concat ", " smart_servers);

  let timed servers =
    let cluster = Smart_host.Testbed.icpp2005 () in
    let resolve = Smart_host.Cluster.resolve_exn cluster in
    let result =
      Smart_apps.Matmul.run cluster
        ~master:(resolve "sagit")
        ~workers:(List.map resolve servers)
        ~n ~blk
    in
    result
  in
  let random_servers = [ "lhost"; "phoebe" ] (* the thesis's random draw *) in
  let random_run = timed random_servers in
  let smart_run = timed smart_servers in
  Fmt.pr "@.%dx%d in %dx%d blocks, master sagit:@." n n blk blk;
  Fmt.pr "  random  (%s): %.2f s@."
    (String.concat ", " random_servers)
    random_run.Smart_apps.Matmul.makespan;
  Fmt.pr "  smart   (%s): %.2f s@."
    (String.concat ", " smart_servers)
    smart_run.Smart_apps.Matmul.makespan;
  Fmt.pr "  improvement: %.1f%% (thesis: 37.1%%)@."
    (100.0
    *. (1.0
       -. (smart_run.Smart_apps.Matmul.makespan
          /. random_run.Smart_apps.Matmul.makespan)));
  List.iter
    (fun (w : Smart_apps.Matmul.worker_stats) ->
      Fmt.pr "    %-10s %d tasks, %.1f s compute@." w.Smart_apps.Matmul.host
        w.Smart_apps.Matmul.tasks_done w.Smart_apps.Matmul.compute_time)
    smart_run.Smart_apps.Matmul.workers
