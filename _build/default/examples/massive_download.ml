(* Example: the massd massive-download program (§5.3.2) on the simulated
   testbed.  Six file servers are split into a fast and a slow rshaper
   group; the client asks the wizard for servers whose *measured*
   bandwidth clears a threshold and downloads through the returned set.

   This exercises the part of the stack the matmul example does not: the
   network monitor's one-way UDP stream measurements through the shapers
   and the monitor_network_bw requirement variable. *)

let mbps = Smart_util.Units.mbps_to_bytes_per_sec

let () =
  let fast = [ "mimas"; "telesto"; "lhost" ] in
  let slow = [ "dione"; "titan-x"; "pandora-x" ] in
  let shape cluster hosts rate =
    List.iter
      (fun h ->
        ignore
          (Smart_host.Cluster.shape_access cluster
             ~node:(Smart_host.Cluster.resolve_exn cluster h)
             ~rate_bytes_per_sec:(Some rate)))
      hosts
  in
  (* selection run: deployed stack measures through the shapers *)
  let c = Smart_host.Testbed.icpp2005 () in
  shape c fast (mbps 6.72);
  shape c slow (mbps 1.33);
  let d =
    Smart_core.Simdriver.deploy c ~monitor:"dalmatian" ~wizard_host:"dalmatian"
      ~servers:(fast @ slow)
  in
  Smart_core.Simdriver.settle ~duration:6.0 d;
  let record = Smart_core.Simdriver.refresh_netmon d in
  Fmt.pr "network monitor measured:@.";
  List.iter
    (fun (e : Smart_proto.Records.net_entry) ->
      Fmt.pr "  %-10s %6.2f Mbps, %5.2f ms@." e.Smart_proto.Records.peer
        (Smart_util.Units.bytes_per_sec_to_mbps e.Smart_proto.Records.bandwidth)
        (Smart_util.Units.s_to_ms e.Smart_proto.Records.delay))
    record.Smart_proto.Records.entries;
  let smart =
    match
      Smart_core.Simdriver.request d ~client:"sagit" ~wanted:2
        ~requirement:"monitor_network_bw > 6\n"
    with
    | Ok servers -> servers
    | Error e -> Fmt.failwith "selection failed: %a" Smart_core.Client.pp_error e
  in
  Fmt.pr "@.smart selection (bw > 6 Mbps): %s@." (String.concat ", " smart);

  (* timed downloads on fresh clusters with identical shaping *)
  let download servers =
    let cluster = Smart_host.Testbed.icpp2005 ~seed:9 () in
    shape cluster fast (mbps 6.72);
    shape cluster slow (mbps 1.33);
    let resolve = Smart_host.Cluster.resolve_exn cluster in
    Smart_apps.Massd.run cluster
      ~client:(resolve "sagit")
      ~servers:(List.map resolve servers)
      ~data_kb:20000 ~blk_kb:100
  in
  let show label servers =
    let r = download servers in
    Fmt.pr "  %-22s %7.0f KB/s (%.1f s)@." label
      (Smart_util.Units.bytes_per_sec_to_kBps r.Smart_apps.Massd.throughput)
      r.Smart_apps.Massd.elapsed;
    List.iter
      (fun (s : Smart_apps.Massd.server_stats) ->
        Fmt.pr "      %-10s %4d blocks@." s.Smart_apps.Massd.host
          s.Smart_apps.Massd.blocks)
      r.Smart_apps.Massd.servers
  in
  Fmt.pr "@.downloading 20 MB in 100 KB blocks:@.";
  show "random (slow group)" [ "dione"; "pandora-x" ];
  show "smart" smart;

  (* the fault-tolerance extension: one of the smart servers dies 8 s
     into the transfer; its in-flight block is requeued and the
     survivor finishes the file *)
  (match smart with
  | first :: _ :: _ ->
    let cluster = Smart_host.Testbed.icpp2005 ~seed:9 () in
    shape cluster fast (mbps 6.72);
    shape cluster slow (mbps 1.33);
    let resolve = Smart_host.Cluster.resolve_exn cluster in
    let r =
      Smart_apps.Massd.run cluster
        ~failures:[ { Smart_apps.Massd.host = first; at = 8.0 } ]
        ~client:(resolve "sagit")
        ~servers:(List.map resolve smart)
        ~data_kb:20000 ~blk_kb:100
    in
    Fmt.pr "@.failover: %s dies 8 s in; the survivor finishes the file:@."
      first;
    Fmt.pr "  %7.0f KB/s (%.1f s)@."
      (Smart_util.Units.bytes_per_sec_to_kBps r.Smart_apps.Massd.throughput)
      r.Smart_apps.Massd.elapsed;
    List.iter
      (fun (s : Smart_apps.Massd.server_stats) ->
        Fmt.pr "      %-10s %4d blocks@." s.Smart_apps.Massd.host
          s.Smart_apps.Massd.blocks)
      r.Smart_apps.Massd.servers
  | _ -> ())
