(* Example: probing a path with the three bandwidth estimators.

   Rebuilds the thesis's measurement topology (Table 3.2), runs an RTT
   sweep from sagit to suna to expose the MTU knee of Formula (3.6), then
   compares the one-way UDP stream estimator with the packet-pair
   (pipechar) and SLoPS (pathload) baselines on the same path. *)

let mbps = Smart_util.Units.bytes_per_sec_to_mbps

let () =
  let fixture = Smart_host.Testbed.paths () in
  let c = fixture.Smart_host.Testbed.cluster in
  let stack = Smart_host.Cluster.stack c in
  let src = fixture.Smart_host.Testbed.sagit in
  let dst = fixture.Smart_host.Testbed.suna in

  Fmt.pr "== RTT sweep sagit -> suna (MTU 1500) ==@.";
  let sweep =
    Smart_measure.Rtt_probe.sweep ~min_size:100 ~max_size:4000 ~step:100
      stack ~src ~dst ()
  in
  List.iter
    (fun s ->
      if s.Smart_measure.Rtt_probe.payload mod 500 = 0 then
        Fmt.pr "  payload %4d B   rtt %a@." s.Smart_measure.Rtt_probe.payload
          Smart_util.Units.pp_time s.Smart_measure.Rtt_probe.rtt)
    sweep.Smart_measure.Rtt_probe.samples;
  let knee = Smart_measure.Rtt_probe.analyze sweep in
  Fmt.pr "  knee at %.0f B; slope below -> %.1f Mbps, above -> %.1f Mbps@.@."
    knee.Smart_measure.Rtt_probe.knee_bytes
    (mbps knee.Smart_measure.Rtt_probe.bw_below)
    (mbps knee.Smart_measure.Rtt_probe.bw_above);

  Fmt.pr "== one-way UDP stream (1600~2900) ==@.";
  (match Smart_measure.Udp_stream.measure stack ~src ~dst () with
  | Some r ->
    Fmt.pr "  min %.2f  max %.2f  avg %.2f Mbps (%d failures)@.@."
      (mbps r.Smart_measure.Udp_stream.min_bw)
      (mbps r.Smart_measure.Udp_stream.max_bw)
      (mbps r.Smart_measure.Udp_stream.avg_bw)
      r.Smart_measure.Udp_stream.failures
  | None -> Fmt.pr "  measurement failed@.@.");

  Fmt.pr "== packet pair (pipechar) ==@.";
  (match Smart_measure.Packet_pair.measure stack ~src ~dst () with
  | Some r ->
    Fmt.pr "  median %.2f Mbps, %.0f%% reliable@.@."
      (mbps r.Smart_measure.Packet_pair.median_bw)
      (100.0 *. r.Smart_measure.Packet_pair.reliability)
  | None -> Fmt.pr "  measurement failed@.@.");

  Fmt.pr "== SLoPS (pathload) ==@.";
  let r = Smart_measure.Slops.measure stack ~src ~dst () in
  Fmt.pr "  %.1f ~ %.1f Mbps after %d iterations@.@."
    (mbps r.Smart_measure.Slops.low)
    (mbps r.Smart_measure.Slops.high)
    r.Smart_measure.Slops.iterations;

  (* Appendix A: hop-by-hop probing on the long path to CMU *)
  Fmt.pr "== traceroute sagit -> cmui (pipechar-style, Appendix A) ==@.";
  let cmui =
    Smart_host.Cluster.resolve_exn fixture.Smart_host.Testbed.cluster "cmui"
  in
  let hops = Smart_measure.Traceroute.run stack ~src ~dst:cmui () in
  Smart_measure.Traceroute.print stack ~src ~dst:cmui hops
