(** Hop-by-hop path probing à la pipechar (Appendix A): TTL-limited UDP
    probes, per-hop RTTs from ICMP time-exceeded echoes, and cumulative
    bandwidth estimates per hop. *)

type reply_kind = Router of int | Destination | Lost

type hop = {
  ttl : int;
  node : int option;
  name : string;  (** "name (ip)", or "*" when no reply *)
  rtt : float option;
  bw_estimate : float option;  (** cumulative bytes/second to this hop *)
}

(** One TTL-limited probe: who answered, and the RTT. *)
val probe_ttl :
  ?size:int ->
  ?timeout:float ->
  Smart_net.Netstack.t ->
  src:int ->
  dst:int ->
  ttl:int ->
  unit ->
  reply_kind * float option

(** Two-size bandwidth estimate to the router at [ttl]. *)
val hop_bandwidth :
  ?s1:int ->
  ?s2:int ->
  Smart_net.Netstack.t ->
  src:int ->
  dst:int ->
  ttl:int ->
  unit ->
  float option

(** Full trace; stops at the destination's port-unreachable or at
    [max_ttl]. *)
val run :
  ?max_ttl:int ->
  ?measure_bandwidth:bool ->
  Smart_net.Netstack.t ->
  src:int ->
  dst:int ->
  unit ->
  hop list

(** Appendix-A-style printout. *)
val print : Smart_net.Netstack.t -> src:int -> dst:int -> hop list -> unit
