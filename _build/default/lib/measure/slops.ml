(* Self-Loading Periodic Streams (the `pathload` baseline of §2.1).

   A stream of K equal packets is sent at rate R.  If R exceeds the
   available bandwidth, a queue builds at the bottleneck and per-packet
   delays trend upward across the stream; otherwise they stay flat.  A
   binary search on R brackets the available bandwidth.  Pathload is
   two-ended and non-intrusive; here the ICMP echo stands in for the
   receiver's timestamps, which is faithful enough for trend detection. *)

type verdict = Increasing | Flat | Inconclusive

type result = {
  low : float;   (* bytes/second bracket *)
  high : float;
  iterations : int;
}

let trend delays =
  let n = Array.length delays in
  if n < 6 then Inconclusive
  else begin
    (* pairwise-comparison test over adjacent samples *)
    let inc = ref 0 in
    for i = 1 to n - 1 do
      if delays.(i) > delays.(i - 1) then incr inc
    done;
    let frac = float_of_int !inc /. float_of_int (n - 1) in
    (* and the stream-wide drift must dominate jitter *)
    let first = Array.sub delays 0 (n / 3) in
    let last = Array.sub delays (n - (n / 3)) (n / 3) in
    let drift = Smart_util.Stats.mean last -. Smart_util.Stats.mean first in
    let noise = Smart_util.Stats.stddev delays in
    if frac > 0.60 && drift > 0.3 *. noise then Increasing
    else if frac < 0.55 then Flat
    else Inconclusive
  end

(* One stream of [count] packets of [size] payload bytes at [rate]
   bytes/second; returns the per-packet RTTs in send order. *)
let stream ?(count = 30) ?(size = 1472) ?(timeout = 10.0) stack ~src ~dst
    ~rate () =
  let engine = Smart_net.Netstack.engine stack in
  let wire = size + Smart_net.Netstack.udp_header + Smart_net.Netstack.ip_header in
  let spacing = float_of_int wire /. rate in
  let sent : (int, int * float) Hashtbl.t = Hashtbl.create 64 in
  let rtts = Array.make count nan in
  let received = ref 0 in
  Smart_net.Netstack.on_icmp stack ~node:src (fun ~now pkt ->
      match pkt.Smart_net.Packet.proto with
      | Smart_net.Packet.Icmp
          (Smart_net.Packet.Port_unreachable { orig_id; orig_dport })
        when orig_dport = Rtt_probe.probe_dport ->
        (match Hashtbl.find_opt sent orig_id with
        | Some (idx, at) ->
          Hashtbl.remove sent orig_id;
          rtts.(idx) <- now -. at;
          incr received
        | None -> ())
      | _ -> ());
  let start = Smart_sim.Engine.now engine in
  for i = 0 to count - 1 do
    ignore
      (Smart_sim.Engine.schedule_at engine
         ~time:(start +. (float_of_int i *. spacing))
         (fun () ->
           let id =
             Smart_net.Netstack.send_udp stack ~src ~dst
               ~sport:Rtt_probe.probe_sport ~dport:Rtt_probe.probe_dport
               ~size
           in
           Hashtbl.replace sent id (i, Smart_sim.Engine.now engine)))
  done;
  let deadline = start +. (float_of_int count *. spacing) +. timeout in
  ignore (Runner.run_until engine ~deadline (fun () -> !received >= count));
  Array.of_list
    (List.filter (fun x -> not (Float.is_nan x)) (Array.to_list rtts))

let measure ?(iterations = 10) ?(lo = 0.5e6 /. 8.0) ?(hi = 1e9 /. 8.0)
    ?(count = 30) ?(size = 1472) stack ~src ~dst () =
  let engine = Smart_net.Netstack.engine stack in
  let lo = ref lo and hi = ref hi in
  let done_iters = ref 0 in
  (try
     for _ = 1 to iterations do
       incr done_iters;
       let rate = Float.sqrt (!lo *. !hi) in
       let delays = stream ~count ~size stack ~src ~dst ~rate () in
       (* let the bottleneck queue drain before the next stream *)
       Smart_sim.Engine.run engine
         ~until:(Smart_sim.Engine.now engine +. 0.5);
       (match trend delays with
       | Increasing -> hi := rate
       | Flat -> lo := rate
       | Inconclusive -> ());
       if !hi /. !lo < 1.15 then raise Exit
     done
   with Exit -> ());
  { low = !lo; high = !hi; iterations = !done_iters }
