(** Self-Loading Periodic Streams available-bandwidth estimator — the
    `pathload` baseline.  Binary search on the stream rate, detecting a
    queue build-up by the delay trend across the stream. *)

type verdict = Increasing | Flat | Inconclusive

type result = {
  low : float;   (** lower bracket, bytes/second *)
  high : float;
  iterations : int;
}

(** Delay-trend classification of one stream's per-packet delays. *)
val trend : float array -> verdict

(** Per-packet RTTs of one rate-controlled probe stream, in send order
    (lost packets omitted). *)
val stream :
  ?count:int ->
  ?size:int ->
  ?timeout:float ->
  Smart_net.Netstack.t ->
  src:int ->
  dst:int ->
  rate:float ->
  unit ->
  float array

(** Bracket the available bandwidth between [lo] and [hi]. *)
val measure :
  ?iterations:int ->
  ?lo:float ->
  ?hi:float ->
  ?count:int ->
  ?size:int ->
  Smart_net.Netstack.t ->
  src:int ->
  dst:int ->
  unit ->
  result
