(* Packet-pair capacity estimator (the `pipechar` baseline of §2.1).

   Two equal, MTU-sized datagrams leave back to back; the bottleneck link
   spreads them by its serialisation time, so the gap between their ICMP
   echoes estimates  capacity ≈ wire_size / gap.  As the thesis notes,
   the method is "very flexible but less robust to network delay
   fluctuations": one jitter sample larger than the gap ruins a trial,
   which our implementation (and Table 3.3's pipechar row) exhibits on
   the high-jitter paths. *)

type trial = { gap : float; bw : float }

type result = {
  trials : trial list;
  median_bw : float;
  failures : int;
  reliability : float;  (* fraction of trials that produced a gap > 0 *)
}

let probe_once ?(size = 1472) ?(timeout = 10.0) stack ~src ~dst () =
  let engine = Smart_net.Netstack.engine stack in
  let sent : (int, int) Hashtbl.t = Hashtbl.create 4 in
  (* datagram id -> pair index (0 = leader, 1 = trailer) *)
  let arrivals = Array.make 2 None in
  let count = ref 0 in
  Smart_net.Netstack.on_icmp stack ~node:src (fun ~now pkt ->
      match pkt.Smart_net.Packet.proto with
      | Smart_net.Packet.Icmp
          (Smart_net.Packet.Port_unreachable { orig_id; orig_dport })
        when orig_dport = Rtt_probe.probe_dport ->
        (match Hashtbl.find_opt sent orig_id with
        | Some idx ->
          Hashtbl.remove sent orig_id;
          arrivals.(idx) <- Some now;
          incr count
        | None -> ())
      | _ -> ());
  let send idx =
    let id =
      Smart_net.Netstack.send_udp stack ~src ~dst
        ~sport:Rtt_probe.probe_sport ~dport:Rtt_probe.probe_dport ~size
    in
    Hashtbl.replace sent id idx
  in
  send 0;
  send 1;
  let deadline = Smart_sim.Engine.now engine +. timeout in
  ignore (Runner.run_until engine ~deadline (fun () -> !count >= 2));
  match (arrivals.(0), arrivals.(1)) with
  | Some a, Some b when b > a ->
    let wire = size + Smart_net.Netstack.udp_header + Smart_net.Netstack.ip_header in
    Some { gap = b -. a; bw = float_of_int wire /. (b -. a) }
  | _ -> None

let measure ?(size = 1472) ?(trials = 20) ?(timeout = 10.0) ?(gap = 0.05)
    stack ~src ~dst () =
  let engine = Smart_net.Netstack.engine stack in
  let ok = ref [] in
  let failures = ref 0 in
  for _ = 1 to trials do
    (match probe_once ~size ~timeout stack ~src ~dst () with
    | Some tr -> ok := tr :: !ok
    | None -> incr failures);
    Smart_sim.Engine.run engine ~until:(Smart_sim.Engine.now engine +. gap)
  done;
  match !ok with
  | [] -> None
  | trs ->
    let bws = Array.of_list (List.map (fun tr -> tr.bw) trs) in
    Some
      {
        trials = List.rev trs;
        median_bw = Smart_util.Stats.median bws;
        failures = !failures;
        reliability =
          float_of_int (List.length trs) /. float_of_int trials;
      }
