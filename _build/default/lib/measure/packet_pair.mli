(** Packet-pair capacity estimator — the `pipechar` baseline.

    Estimates bottleneck capacity from the dispersion of two back-to-back
    MTU-sized probes; accurate on quiet paths, unreliable under delay
    fluctuation (exactly the weakness the thesis reports). *)

type trial = { gap : float; bw : float }

type result = {
  trials : trial list;
  median_bw : float;   (** bytes/second *)
  failures : int;
  reliability : float; (** fraction of usable trials, cf. pipechar's
                           "%% reliable" output *)
}

(** One pair; [None] when an echo is lost or the gap is non-positive. *)
val probe_once :
  ?size:int ->
  ?timeout:float ->
  Smart_net.Netstack.t ->
  src:int ->
  dst:int ->
  unit ->
  trial option

(** [trials] pairs, [gap] seconds apart, summarised by the median. *)
val measure :
  ?size:int ->
  ?trials:int ->
  ?timeout:float ->
  ?gap:float ->
  Smart_net.Netstack.t ->
  src:int ->
  dst:int ->
  unit ->
  result option
