(* Hop-by-hop path probing in the style of pipechar (Appendix A of the
   thesis): TTL-limited UDP probes elicit ICMP time-exceeded replies
   from successive routers, giving per-hop RTTs; two probe sizes per hop
   give a cumulative bandwidth estimate to that hop with the one-way
   UDP stream formula.  The destination itself answers with
   port-unreachable, terminating the trace. *)

type reply_kind = Router of int | Destination | Lost

type hop = {
  ttl : int;
  node : int option;       (* replying router's node id *)
  name : string;           (* resolved name, or "*" when lost *)
  rtt : float option;
  bw_estimate : float option;  (* cumulative bytes/second to this hop *)
}

(* One TTL-limited probe; returns who answered and when. *)
let probe_ttl ?(size = 64) ?(timeout = 5.0) stack ~src ~dst ~ttl () =
  let engine = Smart_net.Netstack.engine stack in
  let result = ref None in
  let sent_at = ref 0.0 in
  let sent_id = ref (-1) in
  Smart_net.Netstack.on_icmp stack ~node:src (fun ~now pkt ->
      match pkt.Smart_net.Packet.proto with
      | Smart_net.Packet.Icmp (Smart_net.Packet.Time_exceeded { orig_id; at_node })
        when orig_id = !sent_id ->
        result := Some (Router at_node, now -. !sent_at)
      | Smart_net.Packet.Icmp
          (Smart_net.Packet.Port_unreachable { orig_id; _ })
        when orig_id = !sent_id ->
        result := Some (Destination, now -. !sent_at)
      | _ -> ());
  sent_at := Smart_sim.Engine.now engine;
  sent_id :=
    Smart_net.Netstack.send_udp stack ~ttl ~src ~dst
      ~sport:Rtt_probe.probe_sport ~dport:Rtt_probe.probe_dport ~size;
  let deadline = !sent_at +. timeout in
  ignore (Runner.run_until engine ~deadline (fun () -> !result <> None));
  match !result with
  | Some (kind, rtt) -> (kind, Some rtt)
  | None -> (Lost, None)

let node_name stack id =
  let topo = Smart_net.Netstack.topology stack in
  let n = Smart_net.Topology.node topo id in
  Printf.sprintf "%s (%s)" n.Smart_net.Topology.name n.Smart_net.Topology.ip

(* Cumulative bandwidth to the hop at [ttl]: two TTL-limited probes of
   different sizes, B = (S2 - S1)/(T2 - T1) on their time-exceeded
   echoes. *)
let hop_bandwidth ?(s1 = 1600) ?(s2 = 2900) stack ~src ~dst ~ttl () =
  let engine = Smart_net.Netstack.engine stack in
  let _, t1 = probe_ttl ~size:s1 stack ~src ~dst ~ttl () in
  Smart_sim.Engine.run engine ~until:(Smart_sim.Engine.now engine +. 0.05);
  let _, t2 = probe_ttl ~size:s2 stack ~src ~dst ~ttl () in
  match (t1, t2) with
  | Some t1, Some t2 when t2 > t1 ->
    Some (float_of_int (s2 - s1) /. (t2 -. t1))
  | _ -> None

(* Full trace with per-hop RTT and cumulative bandwidth estimates. *)
let run ?(max_ttl = 30) ?(measure_bandwidth = true) stack ~src ~dst () =
  let engine = Smart_net.Netstack.engine stack in
  let rec go ttl acc =
    if ttl > max_ttl then List.rev acc
    else begin
      let kind, rtt = probe_ttl stack ~src ~dst ~ttl () in
      Smart_sim.Engine.run engine ~until:(Smart_sim.Engine.now engine +. 0.05);
      let bw_estimate =
        if measure_bandwidth && kind <> Lost then
          hop_bandwidth stack ~src ~dst ~ttl ()
        else None
      in
      let hop =
        match kind with
        | Router node ->
          { ttl; node = Some node; name = node_name stack node; rtt;
            bw_estimate }
        | Destination ->
          { ttl; node = Some dst; name = node_name stack dst; rtt;
            bw_estimate }
        | Lost -> { ttl; node = None; name = "*"; rtt = None; bw_estimate }
      in
      match kind with
      | Destination -> List.rev (hop :: acc)
      | Router _ | Lost -> go (ttl + 1) (hop :: acc)
    end
  in
  go 1 []

(* Appendix-A-style report. *)
let print stack ~src ~dst hops =
  ignore stack;
  ignore src;
  Fmt.pr "traceroute to node %d, %d hops:@." dst (List.length hops);
  List.iter
    (fun h ->
      Fmt.pr "%3d: %-40s %s  %s@." h.ttl h.name
        (match h.rtt with
        | Some rtt -> Fmt.str "%8.3f ms" (Smart_util.Units.s_to_ms rtt)
        | None -> "       *  ")
        (match h.bw_estimate with
        | Some bw ->
          Fmt.str "%8.2f Mbps" (Smart_util.Units.bytes_per_sec_to_mbps bw)
        | None -> ""))
    hops
