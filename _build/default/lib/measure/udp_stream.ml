(* The paper's one-way UDP stream bandwidth estimator (§3.3.2).

   Two datagrams of sizes S1 < S2 are sent back to back to an unopened
   port; their ICMP-echo round-trip times T1, T2 satisfy Formula (3.4),
   so the constant system/network overheads cancel in
       B = (S2 - S1) / (T2 - T1)                      (Formula 3.5)
   provided both sizes exceed the MTU; otherwise the interface
   initialisation speed contaminates the slope and B is under-estimated
   (Formula 3.7) — Table 3.3 quantifies this. *)

let default_s1 = 1600
let default_s2 = 2900

type trial = { s1 : int; s2 : int; t1 : float; t2 : float; bw : float }

type result = {
  trials : trial list;
  min_bw : float;
  max_bw : float;
  avg_bw : float;
  failures : int;
}

(* One (S1, S2) probe pair, sequential as the thesis prescribes: the
   second datagram leaves only after the first echo returned (or timed
   out), and a settling gap separates the two streams so a token-bucket
   shaper on the path is equally refilled for both probes — otherwise
   the "constant overhead" assumption behind Formula (3.5) breaks. *)
let probe_pair ?(timeout = 10.0) ?(gap = 0.05) stack ~src ~dst ~s1 ~s2 () =
  let engine = Smart_net.Netstack.engine stack in
  let rtt size =
    Rtt_probe.ping ~count:1 ~gap:0.0 ~timeout ~size stack ~src ~dst ()
  in
  let t1 = rtt s1 in
  Smart_sim.Engine.run engine ~until:(Smart_sim.Engine.now engine +. gap);
  let t2 = rtt s2 in
  match (t1, t2) with
  | Some t1, Some t2 when t2 > t1 ->
    Some { s1; s2; t1; t2; bw = float_of_int (s2 - s1) /. (t2 -. t1) }
  | _ -> None

let measure ?(s1 = default_s1) ?(s2 = default_s2) ?(trials = 10)
    ?(timeout = 10.0) ?(inter_trial_gap = 0.3) stack ~src ~dst () =
  if s2 <= s1 then invalid_arg "Udp_stream.measure: need s1 < s2";
  let engine = Smart_net.Netstack.engine stack in
  let results = ref [] in
  let failures = ref 0 in
  for _ = 1 to trials do
    (match probe_pair ~timeout stack ~src ~dst ~s1 ~s2 () with
    | Some tr -> results := tr :: !results
    | None -> incr failures);
    Smart_sim.Engine.run engine
      ~until:(Smart_sim.Engine.now engine +. inter_trial_gap)
  done;
  match !results with
  | [] -> None
  | trs ->
    let bws = Array.of_list (List.map (fun tr -> tr.bw) trs) in
    let min_bw, max_bw = Smart_util.Stats.min_max bws in
    Some
      {
        trials = List.rev trs;
        min_bw;
        max_bw;
        avg_bw = Smart_util.Stats.mean bws;
        failures = !failures;
      }
