(** The paper's one-way UDP stream available-bandwidth estimator:
    [B = (S2 - S1) / (T2 - T1)] (Formula 3.5). *)

(** The thesis's optimal probe sizes under MTU 1500 (Table 3.3). *)
val default_s1 : int

val default_s2 : int

type trial = { s1 : int; s2 : int; t1 : float; t2 : float; bw : float }

type result = {
  trials : trial list;
  min_bw : float;  (** bytes/second *)
  max_bw : float;
  avg_bw : float;
  failures : int;
}

(** One sequential (S1, S2) probe pair; [None] on loss or a non-positive
    delay difference.  [gap] separates the two probes so shapers refill
    equally for both. *)
val probe_pair :
  ?timeout:float ->
  ?gap:float ->
  Smart_net.Netstack.t ->
  src:int ->
  dst:int ->
  s1:int ->
  s2:int ->
  unit ->
  trial option

(** [trials] sequential probe pairs summarised as min/max/avg bandwidth;
    [None] when every pair failed.  [inter_trial_gap] of idle time
    separates consecutive pairs. *)
val measure :
  ?s1:int ->
  ?s2:int ->
  ?trials:int ->
  ?timeout:float ->
  ?inter_trial_gap:float ->
  Smart_net.Netstack.t ->
  src:int ->
  dst:int ->
  unit ->
  result option
