lib/measure/runner.ml: Float Smart_sim
