lib/measure/runner.mli: Smart_sim
