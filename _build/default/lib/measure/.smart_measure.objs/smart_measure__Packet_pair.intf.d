lib/measure/packet_pair.mli: Smart_net
