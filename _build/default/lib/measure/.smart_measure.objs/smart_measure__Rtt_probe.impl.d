lib/measure/rtt_probe.ml: Array Float Hashtbl List Runner Smart_net Smart_sim Smart_util
