lib/measure/udp_stream.mli: Smart_net
