lib/measure/slops.mli: Smart_net
