lib/measure/traceroute.ml: Fmt List Printf Rtt_probe Runner Smart_net Smart_sim Smart_util
