lib/measure/traceroute.mli: Smart_net
