lib/measure/packet_pair.ml: Array Hashtbl List Rtt_probe Runner Smart_net Smart_sim Smart_util
