lib/measure/rtt_probe.mli: Smart_net
