lib/measure/udp_stream.ml: Array List Rtt_probe Smart_net Smart_sim Smart_util
