lib/measure/slops.ml: Array Float Hashtbl List Rtt_probe Runner Smart_net Smart_sim Smart_util
