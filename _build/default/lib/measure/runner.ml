(* Helper for the measurement drivers: advance the simulation in small
   increments until a predicate holds or the deadline passes.  Background
   periodic processes keep the event queue non-empty, so "run until idle"
   is never an option. *)

let default_tick = 0.005

let run_until ?(tick = default_tick) engine ~deadline pred =
  let rec loop () =
    if pred () then true
    else begin
      let now = Smart_sim.Engine.now engine in
      if now >= deadline then pred ()
      else begin
        Smart_sim.Engine.run engine ~until:(Float.min deadline (now +. tick));
        loop ()
      end
    end
  in
  loop ()
