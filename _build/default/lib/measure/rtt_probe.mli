(** RTT probing with UDP datagrams echoed by ICMP port-unreachable
    (the experiment behind Figs 3.3-3.6 and the "ping" column of
    Table 3.2). *)

(** Destination port used by probes; never listened on. *)
val probe_dport : int

val probe_sport : int

type sample = { payload : int; rtt : float }

type sweep_result = {
  src : int;
  dst : int;
  samples : sample list;  (** sorted by payload size *)
  lost : int;
}

(** Sweep payload sizes [min_size..max_size] in [step]-byte increments,
    one datagram every [gap] seconds of virtual time. *)
val sweep :
  ?min_size:int ->
  ?max_size:int ->
  ?step:int ->
  ?gap:float ->
  ?timeout:float ->
  Smart_net.Netstack.t ->
  src:int ->
  dst:int ->
  unit ->
  sweep_result

type knee_analysis = {
  knee_bytes : float;   (** detected break point, ≈ MTU *)
  slope_below : float;  (** s/byte below the knee: 1/B + 1/Speed_init *)
  slope_above : float;  (** s/byte above the knee: 1/B *)
  bw_below : float;
  bw_above : float;
  significant : bool;
      (** false on virtual interfaces or jitter-shadowed paths
          (observations 1 and 4 of §3.3.2) *)
}

(** Two-segment fit of a sweep per Formula (3.6). *)
val analyze : sweep_result -> knee_analysis

(** Median RTT of [count] small probes, or [None] if all are lost. *)
val ping :
  ?count:int ->
  ?gap:float ->
  ?timeout:float ->
  ?size:int ->
  Smart_net.Netstack.t ->
  src:int ->
  dst:int ->
  unit ->
  float option
