(* RTT-vs-payload-size sweep (the experiment behind Figs 3.3-3.6).

   A UDP datagram of each payload size is sent to an unopened port; the
   ICMP port-unreachable echo timestamps the round trip.  The probe port
   33434 is never listened on, mirroring the traceroute convention. *)

let probe_dport = 33434
let probe_sport = 40000

type sample = { payload : int; rtt : float }

type sweep_result = {
  src : int;
  dst : int;
  samples : sample list;
  lost : int;
}

let sweep ?(min_size = 1) ?(max_size = 6000) ?(step = 10) ?(gap = 0.02)
    ?(timeout = 5.0) stack ~src ~dst () =
  let engine = Smart_net.Netstack.engine stack in
  let sent : (int, int * float) Hashtbl.t = Hashtbl.create 512 in
  (* datagram id -> (payload, send time) *)
  let samples = ref [] in
  let received = ref 0 in
  let expected = ref 0 in
  Smart_net.Netstack.on_icmp stack ~node:src (fun ~now pkt ->
      match pkt.Smart_net.Packet.proto with
      | Smart_net.Packet.Icmp
          (Smart_net.Packet.Port_unreachable { orig_id; orig_dport })
        when orig_dport = probe_dport ->
        (match Hashtbl.find_opt sent orig_id with
        | Some (payload, at) ->
          Hashtbl.remove sent orig_id;
          incr received;
          samples := { payload; rtt = now -. at } :: !samples
        | None -> ())
      | _ -> ());
  let start = Smart_sim.Engine.now engine in
  let sizes =
    let rec build s acc = if s > max_size then List.rev acc else build (s + step) (s :: acc) in
    build min_size []
  in
  List.iteri
    (fun i size ->
      incr expected;
      ignore
        (Smart_sim.Engine.schedule_at engine
           ~time:(start +. (float_of_int i *. gap))
           (fun () ->
             let id =
               Smart_net.Netstack.send_udp stack ~src ~dst ~sport:probe_sport
                 ~dport:probe_dport ~size
             in
             Hashtbl.replace sent id (size, Smart_sim.Engine.now engine))))
    sizes;
  let deadline =
    start +. (float_of_int (List.length sizes) *. gap) +. timeout
  in
  ignore
    (Runner.run_until engine ~deadline (fun () -> !received >= !expected));
  let samples =
    List.sort (fun a b -> compare a.payload b.payload) !samples
  in
  { src; dst; samples; lost = !expected - !received }

(* Fit the two-slope model of Formula (3.6) to a sweep: returns the knee
   location (≈ MTU) and the bandwidth implied by each slope. *)
type knee_analysis = {
  knee_bytes : float;
  slope_below : float;  (* seconds per byte *)
  slope_above : float;
  bw_below : float;     (* bytes/second implied by 1/slope *)
  bw_above : float;
  significant : bool;
      (* observations 1 and 4 of §3.3.2: on virtual interfaces or paths
         whose RTT variation dwarfs the init cost, no knee is visible *)
}

let analyze result =
  let xs = Array.of_list (List.map (fun s -> float_of_int s.payload) result.samples) in
  let ys = Array.of_list (List.map (fun s -> s.rtt) result.samples) in
  let fit = Smart_util.Stats.knee_fit ~xs ~ys in
  let bw slope = if slope > 0.0 then 1.0 /. slope else Float.infinity in
  let below = fit.Smart_util.Stats.below.Smart_util.Stats.slope in
  let above = fit.Smart_util.Stats.above.Smart_util.Stats.slope in
  {
    knee_bytes = fit.Smart_util.Stats.break_x;
    slope_below = below;
    slope_above = above;
    bw_below = bw below;
    bw_above = bw above;
    significant =
      below > 0.0 && above > 0.0
      && below > 1.5 *. above
      && fit.Smart_util.Stats.below.Smart_util.Stats.r2 > 0.7;
  }

(* Small-payload ping-like RTT: median round trip of [count] minimal
   datagrams (used for the Table 3.2 "RTT by ping" column and by the
   network monitor's delay metric). *)
let ping ?(count = 5) ?(gap = 0.05) ?(timeout = 5.0) ?(size = 56) stack ~src
    ~dst () =
  let engine = Smart_net.Netstack.engine stack in
  let sent : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let rtts = ref [] in
  Smart_net.Netstack.on_icmp stack ~node:src (fun ~now pkt ->
      match pkt.Smart_net.Packet.proto with
      | Smart_net.Packet.Icmp
          (Smart_net.Packet.Port_unreachable { orig_id; orig_dport })
        when orig_dport = probe_dport ->
        (match Hashtbl.find_opt sent orig_id with
        | Some at ->
          Hashtbl.remove sent orig_id;
          rtts := (now -. at) :: !rtts
        | None -> ())
      | _ -> ());
  let start = Smart_sim.Engine.now engine in
  for i = 0 to count - 1 do
    ignore
      (Smart_sim.Engine.schedule_at engine
         ~time:(start +. (float_of_int i *. gap))
         (fun () ->
           let id =
             Smart_net.Netstack.send_udp stack ~src ~dst ~sport:probe_sport
               ~dport:probe_dport ~size
           in
           Hashtbl.replace sent id (Smart_sim.Engine.now engine)))
  done;
  let deadline = start +. (float_of_int count *. gap) +. timeout in
  ignore
    (Runner.run_until engine ~deadline (fun () ->
         List.length !rtts >= count));
  match !rtts with
  | [] -> None
  | rtts -> Some (Smart_util.Stats.median (Array.of_list rtts))
