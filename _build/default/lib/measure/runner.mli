(** Drive the simulation forward until a measurement completes. *)

(** [run_until engine ~deadline pred] advances the engine in [tick]-sized
    slices until [pred ()] is true or virtual time reaches [deadline];
    returns the final value of [pred ()]. *)
val run_until :
  ?tick:float -> Smart_sim.Engine.t -> deadline:float -> (unit -> bool) -> bool
