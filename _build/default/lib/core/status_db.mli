(** The three status databases (system / network / security) shared
    between monitors, transmitter, receiver and wizard — the in-memory
    stand-in for the thesis's System V shared memory segments. *)

type t

val create : unit -> t

val update_sys : t -> Smart_proto.Records.sys_record -> unit

val find_sys : t -> host:string -> Smart_proto.Records.sys_record option

(** All system records, sorted by host name (the wizard's scan order). *)
val sys_records : t -> Smart_proto.Records.sys_record list

(** Remove records older than [max_age]; returns how many were dropped. *)
val sweep_sys : t -> now:float -> max_age:float -> int

val update_net : t -> Smart_proto.Records.net_record -> unit

val find_net : t -> monitor:string -> Smart_proto.Records.net_record option

val net_records : t -> Smart_proto.Records.net_record list

(** Metrics toward [target], searched across all monitor records. *)
val net_entry_for : t -> target:string -> Smart_proto.Records.net_entry option

(** Replace the whole security table. *)
val replace_sec : t -> Smart_proto.Records.sec_record -> unit

val security_level : t -> host:string -> int option

val sec_record : t -> Smart_proto.Records.sec_record

val sys_count : t -> int

(** Drop one server record (used by the receiver's mirror semantics). *)
val remove_sys : t -> host:string -> unit
