(* The network monitor (§3.3.3): measures (delay, bandwidth) along the
   paths from this monitor to its probing targets — peer monitors in a
   multi-group deployment, or the local servers directly in a
   single-group one — strictly one target at a time, as the thesis
   prescribes ("multiple probes should not run simultaneously").

   The actual measurement is injected: the simulation driver plugs in the
   one-way UDP stream estimator over the packet plane, the realnet driver
   a socket-based equivalent. *)

type probe_result = { delay : float; bandwidth : float }

type prober = target:string -> probe_result option

type config = {
  monitor_name : string;
  targets : string list;  (* host names, probed in order *)
}

type t = {
  config : config;
  db : Status_db.t;
  mutable probes_run : int;
  mutable probe_failures : int;
}

let create config db = { config; db; probes_run = 0; probe_failures = 0 }

(* Probe every target sequentially and publish the refreshed record. *)
let probe_all t ~now ~(prober : prober) =
  let entries =
    List.filter_map
      (fun target ->
        t.probes_run <- t.probes_run + 1;
        match prober ~target with
        | Some { delay; bandwidth } ->
          Some
            {
              Smart_proto.Records.peer = target;
              delay;
              bandwidth;
              measured_at = now;
            }
        | None ->
          t.probe_failures <- t.probe_failures + 1;
          None)
      t.config.targets
  in
  let record =
    { Smart_proto.Records.monitor = t.config.monitor_name; entries }
  in
  Status_db.update_net t.db record;
  record

(* Recommended probing interval for [n] groups: the number of paths grows
   as n(n-1), so the interval scales with it (§3.3.3). *)
let recommended_interval ~groups ~per_probe_cost =
  let paths = groups * (groups - 1) in
  Float.max 2.0 (float_of_int paths *. per_probe_cost *. 2.0)

let probes_run t = t.probes_run

let probe_failures t = t.probe_failures
