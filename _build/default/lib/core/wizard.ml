(* The wizard (§3.6.1): a daemon answering user requests on its UDP
   service port.

   Centralized mode answers straight from the receiver-maintained
   databases.  Distributed mode first pulls fresh snapshots from every
   transmitter, parks the request, and answers when the data has arrived
   (or a freshness deadline passes). *)

type mode =
  | Centralized
  | Distributed of {
      transmitters : Output.address list;
      freshness_timeout : float;
    }

(* Multi-group deployments (Fig 3.8): the network monitors probe peer
   monitors, not individual servers, so the wizard maps each server to
   its group and binds monitor_network_* from the local group's record
   toward that group.  Servers of the local group get [local_entry]
   ("in the local area network, the bandwidth and delay is sufficient",
   §3.3.3). *)
type groups = {
  local_monitor : string;
  group_of : string -> string option;  (* server host -> group monitor *)
  local_entry : Smart_proto.Records.net_entry;
}

let default_local_entry =
  {
    Smart_proto.Records.peer = "";
    delay = 1e-4;
    bandwidth = 100e6 /. 8.0;  (* nominal switched 100 Mbps Ethernet *)
    measured_at = 0.0;
  }

type config = { mode : mode; groups : groups option }

type pending = {
  from : Output.address;
  request : Smart_proto.Wizard_msg.request;
  deadline : float;
  target_updates : int;  (* value of [updates_seen] that releases it *)
}

type t = {
  config : config;
  db : Status_db.t;
  mutable pending : pending list;
  mutable updates_seen : int;
  mutable requests_handled : int;
  mutable compile_errors : int;
  mutable last_result : Selection.result option;
}

let create config db =
  {
    config;
    db;
    pending = [];
    updates_seen = 0;
    requests_handled = 0;
    compile_errors = 0;
    last_result = None;
  }

(* Receiver update hook: counts applied frames so distributed-mode
   requests know when every transmitter has re-reported. *)
let note_update t = t.updates_seen <- t.updates_seen + 1

(* Network metrics toward one server: direct measurements in flat
   deployments, group-level measurements (local monitor -> server's
   group monitor) in multi-group ones. *)
let net_for t ~host =
  match t.config.groups with
  | None -> Status_db.net_entry_for t.db ~target:host
  | Some { local_monitor; group_of; local_entry } ->
    (match group_of host with
    | None -> Status_db.net_entry_for t.db ~target:host
    | Some group when String.equal group local_monitor ->
      Some { local_entry with Smart_proto.Records.peer = host }
    | Some group ->
      (match Status_db.find_net t.db ~monitor:local_monitor with
      | None -> None
      | Some record ->
        List.find_opt
          (fun (e : Smart_proto.Records.net_entry) ->
            String.equal e.Smart_proto.Records.peer group)
          record.Smart_proto.Records.entries))

let server_views t =
  List.map
    (fun (record : Smart_proto.Records.sys_record) ->
      let report = record.Smart_proto.Records.report in
      let host = report.Smart_proto.Report.host in
      {
        Selection.record;
        net = net_for t ~host;
        security_level = Status_db.security_level t.db ~host;
      })
    (Status_db.sys_records t.db)

let reply_to (request : Smart_proto.Wizard_msg.request) ~from ~servers =
  let reply =
    { Smart_proto.Wizard_msg.seq = request.Smart_proto.Wizard_msg.seq; servers }
  in
  [
    Output.udp ~host:from.Output.host ~port:from.Output.port
      (Smart_proto.Wizard_msg.encode_reply reply);
  ]

let process t (request : Smart_proto.Wizard_msg.request) ~from =
  t.requests_handled <- t.requests_handled + 1;
  match
    Smart_lang.Requirement.compile request.Smart_proto.Wizard_msg.requirement
  with
  | Error _ ->
    t.compile_errors <- t.compile_errors + 1;
    reply_to request ~from ~servers:[]
  | Ok program ->
    let result =
      Selection.select ~requirement:program ~servers:(server_views t)
        ~wanted:request.Smart_proto.Wizard_msg.server_num
    in
    t.last_result <- Some result;
    reply_to request ~from ~servers:result.Selection.selected

let handle_request t ~now ~from data =
  match Smart_proto.Wizard_msg.decode_request data with
  | Error _ -> []  (* garbage datagram: drop silently like a real daemon *)
  | Ok request ->
    (match t.config.mode with
    | Centralized -> process t request ~from
    | Distributed { transmitters; freshness_timeout } ->
      (* one push = three frames per transmitter *)
      let target_updates =
        t.updates_seen + (3 * List.length transmitters)
      in
      t.pending <-
        t.pending
        @ [ { from; request; deadline = now +. freshness_timeout; target_updates } ];
      List.map
        (fun (addr : Output.address) ->
          Output.udp ~host:addr.Output.host ~port:addr.Output.port
            Transmitter.pull_request_magic)
        transmitters)

(* Flush distributed-mode requests whose data is fresh (all transmitters
   re-reported) or whose deadline passed. *)
let tick t ~now =
  let ready, waiting =
    List.partition
      (fun p -> t.updates_seen >= p.target_updates || now >= p.deadline)
      t.pending
  in
  t.pending <- waiting;
  List.concat_map (fun p -> process t p.request ~from:p.from) ready

let pending_count t = List.length t.pending

let requests_handled t = t.requests_handled

let compile_errors t = t.compile_errors

let last_result t = t.last_result
