(** The system status monitor (§3.2.2): ingests probe reports, expires
    servers after [missed_intervals] silent probe periods. *)

type config = { probe_interval : float; missed_intervals : int }

(** 5 s probe interval, 3 missed intervals (§4.1). *)
val default_config : config

type t

val create : ?config:config -> Status_db.t -> t

(** Age beyond which a record is considered stale. *)
val max_age : t -> float

(** Handle one report datagram; updates the database on success. *)
val handle_report :
  t -> now:float -> string -> (Smart_proto.Report.t, string) result

(** Expiry sweep; returns the number of servers dropped. *)
val sweep : t -> now:float -> int

val reports_handled : t -> int

val parse_errors : t -> int
