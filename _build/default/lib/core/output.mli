(** Sans-IO component outputs: components return these instead of
    touching sockets; a driver (simulated or Unix) performs them. *)

type address = { host : string; port : int }

type t =
  | Udp of { dst : address; data : string }
      (** one unreliable datagram *)
  | Stream of { dst : address; data : string }
      (** reliable ordered bytes (TCP); frames are self-delimiting *)

val udp : host:string -> port:int -> string -> t

val stream : host:string -> port:int -> string -> t

val pp_address : Format.formatter -> address -> unit

val pp : Format.formatter -> t -> unit
