(* The system status monitor (§3.2.2): collects probe reports into the
   system database, stamping each record with its arrival time, and
   periodically sweeps out servers whose probe has gone quiet. *)

type config = {
  probe_interval : float;  (* expected reporting period of the probes *)
  missed_intervals : int;  (* failures tolerated before expiry (3 in §4.1) *)
}

let default_config = { probe_interval = 5.0; missed_intervals = 3 }

type t = {
  config : config;
  db : Status_db.t;
  mutable reports_handled : int;
  mutable parse_errors : int;
}

let create ?(config = default_config) db =
  { config; db; reports_handled = 0; parse_errors = 0 }

let max_age t = t.config.probe_interval *. float_of_int t.config.missed_intervals

(* One incoming report datagram. *)
let handle_report t ~now data =
  match Smart_proto.Report.of_string data with
  | Error e ->
    t.parse_errors <- t.parse_errors + 1;
    Error e
  | Ok report ->
    t.reports_handled <- t.reports_handled + 1;
    Status_db.update_sys t.db
      { Smart_proto.Records.report; updated_at = now };
    Ok report

(* Periodic expiry sweep; returns the number of expired servers. *)
let sweep t ~now = Status_db.sweep_sys t.db ~now ~max_age:(max_age t)

let reports_handled t = t.reports_handled

let parse_errors t = t.parse_errors
