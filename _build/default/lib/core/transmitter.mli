(** The transmitter (§3.5.1): ships database snapshots to the receiver as
    [type,size,data] frames; active in centralized mode, pull-driven in
    distributed mode. *)

type mode = Centralized | Distributed

(** Datagram body that triggers a distributed-mode push. *)
val pull_request_magic : string

type config = {
  mode : mode;
  order : Smart_proto.Endian.order;
  receiver : Output.address;
}

type t

val create : monitor_name:string -> config -> Status_db.t -> t

(** The three frames of the current database state. *)
val snapshot_frames : t -> Smart_proto.Frame.frame list

(** Unconditional push (both modes). *)
val push : t -> Output.t list

(** Periodic tick: pushes in centralized mode, no-op in distributed. *)
val tick : t -> Output.t list

(** Pull request handler: pushes in distributed mode when the magic
    matches, no-op otherwise. *)
val handle_pull : t -> data:string -> Output.t list

val pushes : t -> int

val bytes_sent : t -> int
