(* The transmitter (§3.5.1): snapshots the monitor-side databases into
   three [type,size,data] frames and ships them to the receiver over a
   reliable stream.

   Centralized mode pushes on every tick; distributed mode stays passive
   and answers explicit pull requests from the wizard. *)

type mode = Centralized | Distributed

let pull_request_magic = "SMART-PULL"

type config = {
  mode : mode;
  order : Smart_proto.Endian.order;  (* must match the receiver's *)
  receiver : Output.address;
}

type t = {
  config : config;
  db : Status_db.t;
  monitor_name : string;
  mutable pushes : int;
  mutable bytes_sent : int;
}

let create ~monitor_name config db =
  { config; db; monitor_name; pushes = 0; bytes_sent = 0 }

let snapshot_frames t =
  let order = t.config.order in
  let sys_data =
    String.concat ""
      (List.map
         (Smart_proto.Records.encode_sys order)
         (Status_db.sys_records t.db))
  in
  let net_data =
    match Status_db.find_net t.db ~monitor:t.monitor_name with
    | Some record -> Smart_proto.Records.encode_net order record
    | None ->
      Smart_proto.Records.encode_net order
        { Smart_proto.Records.monitor = t.monitor_name; entries = [] }
  in
  let sec_data =
    Smart_proto.Records.encode_sec order (Status_db.sec_record t.db)
  in
  [
    { Smart_proto.Frame.payload_type = Smart_proto.Frame.Sys_db; data = sys_data };
    { Smart_proto.Frame.payload_type = Smart_proto.Frame.Net_db; data = net_data };
    { Smart_proto.Frame.payload_type = Smart_proto.Frame.Sec_db; data = sec_data };
  ]

let push t =
  let encoded =
    String.concat ""
      (List.map (Smart_proto.Frame.encode t.config.order) (snapshot_frames t))
  in
  t.pushes <- t.pushes + 1;
  t.bytes_sent <- t.bytes_sent + String.length encoded;
  [
    Output.stream ~host:t.config.receiver.Output.host
      ~port:t.config.receiver.Output.port encoded;
  ]

(* Centralized-mode periodic tick. *)
let tick t =
  match t.config.mode with Centralized -> push t | Distributed -> []

(* Distributed-mode pull request (a datagram on the transmitter port). *)
let handle_pull t ~data =
  match t.config.mode with
  | Distributed when String.equal data pull_request_magic -> push t
  | Distributed -> []
  | Centralized -> []

let pushes t = t.pushes

let bytes_sent t = t.bytes_sent
