(* The status databases of Fig 3.10 — the in-memory equivalent of the
   System V shared memory segments.  One instance lives on the monitor
   machine (written by the three monitors, read by the transmitter) and
   one on the wizard machine (written by the receiver, read by the
   wizard). *)

type t = {
  sys : (string, Smart_proto.Records.sys_record) Hashtbl.t;  (* by host *)
  net : (string, Smart_proto.Records.net_record) Hashtbl.t;  (* by monitor *)
  sec : (string, int) Hashtbl.t;                             (* host -> level *)
}

let create () =
  { sys = Hashtbl.create 32; net = Hashtbl.create 8; sec = Hashtbl.create 32 }

let update_sys t (record : Smart_proto.Records.sys_record) =
  Hashtbl.replace t.sys record.Smart_proto.Records.report.Smart_proto.Report.host
    record

let find_sys t ~host = Hashtbl.find_opt t.sys host

let sys_records t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.sys []
  |> List.sort (fun a b ->
         compare a.Smart_proto.Records.report.Smart_proto.Report.host
           b.Smart_proto.Records.report.Smart_proto.Report.host)

(* Drop servers whose probe has stopped reporting (§3.2.2): records older
   than [max_age] (3 probe intervals by default in the drivers). *)
let sweep_sys t ~now ~max_age =
  let stale =
    Hashtbl.fold
      (fun host r acc ->
        if now -. r.Smart_proto.Records.updated_at > max_age then host :: acc
        else acc)
      t.sys []
  in
  List.iter (Hashtbl.remove t.sys) stale;
  List.length stale

let update_net t (record : Smart_proto.Records.net_record) =
  Hashtbl.replace t.net record.Smart_proto.Records.monitor record

let find_net t ~monitor = Hashtbl.find_opt t.net monitor

let net_records t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.net []
  |> List.sort (fun a b ->
         compare a.Smart_proto.Records.monitor b.Smart_proto.Records.monitor)

(* Network metrics toward a given target host, looked up across all
   monitor records. *)
let net_entry_for t ~target =
  Hashtbl.fold
    (fun _ (r : Smart_proto.Records.net_record) acc ->
      match acc with
      | Some _ -> acc
      | None ->
        List.find_opt
          (fun e -> String.equal e.Smart_proto.Records.peer target)
          r.Smart_proto.Records.entries)
    t.net None

let replace_sec t (record : Smart_proto.Records.sec_record) =
  Hashtbl.reset t.sec;
  List.iter
    (fun e ->
      Hashtbl.replace t.sec e.Smart_proto.Records.host
        e.Smart_proto.Records.level)
    record.Smart_proto.Records.entries

let security_level t ~host = Hashtbl.find_opt t.sec host

let sec_record t =
  {
    Smart_proto.Records.entries =
      Hashtbl.fold
        (fun host level acc ->
          { Smart_proto.Records.host; level } :: acc)
        t.sec []
      |> List.sort (fun a b ->
             compare a.Smart_proto.Records.host b.Smart_proto.Records.host);
  }

let sys_count t = Hashtbl.length t.sys

let remove_sys t ~host = Hashtbl.remove t.sys host
