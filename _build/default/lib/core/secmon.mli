(** The security monitor (§3.4): imports (host, clearance level) records
    into the security database from the dummy security log or a pluggable
    agent. *)

type t

val create : Status_db.t -> t

(** Parse and ingest a security log text ("host level" lines). *)
val refresh_from_log :
  t -> string -> (Smart_proto.Records.sec_record, string) result

(** Inject a pre-built record (third-party agent path). *)
val refresh : t -> Smart_proto.Records.sec_record -> unit

val refreshes : t -> int

val last_error : t -> string option
