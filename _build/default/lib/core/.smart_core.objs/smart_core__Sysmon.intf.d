lib/core/sysmon.mli: Smart_proto Status_db
