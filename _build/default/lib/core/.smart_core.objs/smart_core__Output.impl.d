lib/core/output.ml: Fmt String
