lib/core/selection.mli: Smart_lang Smart_proto
