lib/core/netmon.mli: Smart_proto Status_db
