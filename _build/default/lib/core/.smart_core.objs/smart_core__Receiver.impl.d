lib/core/receiver.ml: Hashtbl List Option Smart_proto Status_db String
