lib/core/client.mli: Format Smart_proto Smart_util
