lib/core/transmitter.ml: List Output Smart_proto Status_db String
