lib/core/receiver.mli: Smart_proto Status_db
