lib/core/status_db.mli: Smart_proto
