lib/core/transmitter.mli: Output Smart_proto Status_db
