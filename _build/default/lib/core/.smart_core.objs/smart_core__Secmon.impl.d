lib/core/secmon.ml: Smart_proto Status_db
