lib/core/probe.ml: List Output Printf Result Smart_host Smart_proto String
