lib/core/output.mli: Format
