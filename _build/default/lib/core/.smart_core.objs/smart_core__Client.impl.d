lib/core/client.ml: Fmt List Printf Smart_lang Smart_proto Smart_util
