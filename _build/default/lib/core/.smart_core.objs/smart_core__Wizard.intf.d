lib/core/wizard.mli: Output Selection Smart_proto Status_db
