lib/core/status_db.ml: Hashtbl List Smart_proto String
