lib/core/netmon.ml: Float List Smart_proto Status_db
