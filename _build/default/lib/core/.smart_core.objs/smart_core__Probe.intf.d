lib/core/probe.mli: Output Smart_host Smart_proto
