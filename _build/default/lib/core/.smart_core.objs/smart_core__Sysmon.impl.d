lib/core/sysmon.ml: Smart_proto Status_db
