lib/core/simdriver.mli: Client Probe Smart_host Smart_proto Status_db Sysmon Transmitter Wizard
