lib/core/selection.ml: List Option Smart_lang Smart_proto Smart_util String
