lib/core/wizard.ml: List Output Selection Smart_lang Smart_proto Status_db String Transmitter
