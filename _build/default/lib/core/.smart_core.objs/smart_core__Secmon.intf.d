lib/core/secmon.mli: Smart_proto Status_db
