lib/core/simdriver.ml: Client Hashtbl List Netmon Output Probe Receiver Secmon Smart_host Smart_measure Smart_net Smart_proto Smart_sim Smart_util Status_db String Sysmon Transmitter Wizard
