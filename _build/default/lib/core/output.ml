(* Sans-IO component outputs.

   Components never touch sockets: handling a message or a tick returns a
   list of outputs, and a driver (simulated or Unix) performs them.  The
   same component code therefore runs inside the discrete-event simulator
   and on real sockets. *)

type address = { host : string; port : int }

type t =
  | Udp of { dst : address; data : string }
      (* one unreliable datagram *)
  | Stream of { dst : address; data : string }
      (* reliable ordered bytes (TCP); frames are self-delimiting *)

let udp ~host ~port data = Udp { dst = { host; port }; data }

let stream ~host ~port data = Stream { dst = { host; port }; data }

let pp_address ppf a = Fmt.pf ppf "%s:%d" a.host a.port

let pp ppf = function
  | Udp { dst; data } ->
    Fmt.pf ppf "udp -> %a (%d B)" pp_address dst (String.length data)
  | Stream { dst; data } ->
    Fmt.pf ppf "stream -> %a (%d B)" pp_address dst (String.length data)
