(** Protocol half of the client library (§3.6.2): request construction,
    reply validation, option semantics. *)

type error =
  | Timeout
  | Wrong_seq of { expected : int; got : int }
  | Not_enough of { wanted : int; got : int }
  | Malformed of string

val pp_error : Format.formatter -> error -> unit

type t

val create : rng:Smart_util.Prng.t -> t

(** Build a request with a fresh random sequence number.  Raises
    [Invalid_argument] when [wanted] is out of range. *)
val make_request :
  t ->
  wanted:int ->
  option:Smart_proto.Wizard_msg.option_flag ->
  requirement:string ->
  Smart_proto.Wizard_msg.request

(** Validate a reply datagram and apply the option semantics. *)
val check_reply :
  Smart_proto.Wizard_msg.request -> string -> (string list, error) result

(** Compile the requirement locally and report unbound variables (typo
    candidates) before anything is sent. *)
val lint_requirement : string -> (string list, string) result
