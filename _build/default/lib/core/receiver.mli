(** The receiver (§3.5.2): reassembles transmitter frames from reliable
    streams and mirrors them into the wizard-side databases. *)

type t

val create : order:Smart_proto.Endian.order -> Status_db.t -> t

(** Notification hook fired after every successfully applied frame (used
    by the distributed-mode wizard to detect fresh data). *)
val set_update_hook : t -> (Smart_proto.Frame.payload_type -> unit) option -> unit

(** Feed raw stream bytes arriving from transmitter [from]. *)
val handle_stream : t -> from:string -> string -> (unit, string) result

val frames_handled : t -> int

val decode_errors : t -> int
