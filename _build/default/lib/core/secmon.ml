(* The security monitor (§3.4): in this implementation it imports the
   dummy security log — (host, clearance level) pairs — into the security
   database.  The component boundary is deliberately thin so third-party
   agents (the thesis mentions Cisco NAC) can replace the log source. *)

type t = {
  db : Status_db.t;
  mutable refreshes : int;
  mutable last_error : string option;
}

let create db = { db; refreshes = 0; last_error = None }

(* Ingest a complete security log text. *)
let refresh_from_log t text =
  match Smart_proto.Records.parse_security_log text with
  | Ok record ->
    Status_db.replace_sec t.db record;
    t.refreshes <- t.refreshes + 1;
    Ok record
  | Error e ->
    t.last_error <- Some e;
    Error e

(* Direct injection for pluggable agents. *)
let refresh t record =
  Status_db.replace_sec t.db record;
  t.refreshes <- t.refreshes + 1

let refreshes t = t.refreshes

let last_error t = t.last_error
