(** Datagram descriptors of the packet plane. *)

type icmp =
  | Port_unreachable of { orig_id : int; orig_dport : int }
      (** echo of a datagram sent to a closed UDP port *)
  | Time_exceeded of { orig_id : int; at_node : int }
      (** the datagram's TTL ran out at router [at_node] *)
  | Echo_request of { seq : int }
  | Echo_reply of { seq : int }

type proto =
  | Udp of { sport : int; dport : int }
  | Icmp of icmp

type t = {
  id : int;
  src : int;      (** node ids in the topology *)
  dst : int;
  proto : proto;
  size : int;     (** transport payload bytes *)
  ttl : int;      (** hops the datagram may still take *)
  sent_at : float;
  payload : string;  (** application bytes; "" when only timing matters *)
}

val pp_proto : Format.formatter -> proto -> unit

val pp : Format.formatter -> t -> unit
