(** Max-min fair rate allocation over shared links (progressive filling).

    Fluid model of competing TCP flows: used by the flow plane to compute
    per-transfer throughput whenever the set of active flows changes. *)

(** Rate assigned to flows that cross no capacity-limited link. *)
val unconstrained_rate : float

(** [rates ~capacities ~flows] returns the max-min fair rate of each flow;
    [flows.(i)] lists the indices (into [capacities]) of the links flow
    [i] traverses.  Raises [Invalid_argument] on an out-of-range index. *)
val rates : capacities:float array -> flows:int list array -> float array
