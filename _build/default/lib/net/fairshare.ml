(* Max-min fair rate allocation (progressive filling / water filling).

   Input: link capacities and, per flow, the list of link indices the flow
   traverses.  Output: one rate per flow such that every flow is
   bottlenecked at some link whose capacity is exhausted, and no flow can
   be increased without decreasing a flow with an equal-or-smaller rate.

   This is the fluid stand-in for competing TCP connections: k downloads
   through one shaped link each obtain capacity/k, which is what the
   massd experiments of §5.3.2 rely on. *)

let unconstrained_rate = 1e12 (* flows crossing no saturable link *)

let rates ~capacities ~flows =
  let nlinks = Array.length capacities in
  let nflows = Array.length flows in
  Array.iter
    (List.iter (fun l ->
         if l < 0 || l >= nlinks then invalid_arg "Fairshare.rates: bad link"))
    flows;
  let remaining = Array.copy capacities in
  let count = Array.make nlinks 0 in
  Array.iter (List.iter (fun l -> count.(l) <- count.(l) + 1)) flows;
  let rate = Array.make nflows 0.0 in
  let active = Array.make nflows true in
  let n_active = ref nflows in
  (* flows over no links at all are only bounded by the caller *)
  Array.iteri
    (fun i links ->
      if links = [] then begin
        rate.(i) <- unconstrained_rate;
        active.(i) <- false;
        decr n_active
      end)
    flows;
  while !n_active > 0 do
    (* bottleneck link: smallest fair share among links still carrying
       active flows *)
    let best = ref (-1) in
    let best_share = ref Float.infinity in
    for l = 0 to nlinks - 1 do
      if count.(l) > 0 then begin
        let share = remaining.(l) /. float_of_int count.(l) in
        if share < !best_share then begin
          best_share := share;
          best := l
        end
      end
    done;
    if !best < 0 then begin
      (* remaining active flows cross no counted link: unconstrained *)
      Array.iteri
        (fun i is_active ->
          if is_active then begin
            rate.(i) <- unconstrained_rate;
            active.(i) <- false;
            decr n_active
          end)
        active
    end
    else begin
      let share = Float.max 0.0 !best_share in
      let bottleneck = !best in
      Array.iteri
        (fun i links ->
          if active.(i) && List.mem bottleneck links then begin
            rate.(i) <- share;
            active.(i) <- false;
            decr n_active;
            List.iter
              (fun l ->
                remaining.(l) <- Float.max 0.0 (remaining.(l) -. share);
                count.(l) <- count.(l) - 1)
              links
          end)
        flows
    end
  done;
  rate
