(** Fluid background traffic generators driving a channel's cross load. *)

type t

val stop : t -> unit

(** Gaussian wobble around [mean_load] (bytes/second), re-drawn every
    [period] seconds. *)
val steady :
  engine:Smart_sim.Engine.t ->
  rng:Smart_util.Prng.t ->
  chan:Link.t ->
  mean_load:float ->
  ?sigma:float ->
  ?period:float ->
  unit ->
  t

(** Two-state on/off load: [on_load] with probability [p_on] per period,
    [off_load] otherwise. *)
val bursty :
  engine:Smart_sim.Engine.t ->
  rng:Smart_util.Prng.t ->
  chan:Link.t ->
  on_load:float ->
  off_load:float ->
  ?p_on:float ->
  ?period:float ->
  unit ->
  t
