(* Background (cross) traffic generators.

   Cross traffic is modelled fluidly: a generator periodically re-draws a
   channel's [cross_load].  Two shapes are provided:
   - [steady]: Gaussian wobble around a mean utilisation, for the mild
     variation of a LAN path;
   - [bursty]: two-state on/off (Markov) load, for WAN paths where the
     thesis's pipechar traces show "bad fluctuation". *)

type t = { proc : Smart_sim.Engine.periodic }

let stop t = Smart_sim.Engine.stop_periodic t.proc

let clamp_load (chan : Link.t) load =
  Link.set_cross_load chan
    (Float.max 0.0 (Float.min (chan.Link.conf.capacity *. 0.98) load))

let steady ~engine ~rng ~chan ~mean_load ?(sigma = 0.0) ?(period = 0.05) () =
  let proc =
    Smart_sim.Engine.every engine ~period ~start:(Smart_sim.Engine.now engine)
      (fun _now ->
        let load =
          if sigma > 0.0 then
            Smart_util.Prng.gaussian rng ~mu:mean_load ~sigma
          else mean_load
        in
        clamp_load chan load)
  in
  clamp_load chan mean_load;
  { proc }

let bursty ~engine ~rng ~chan ~on_load ~off_load ?(p_on = 0.3)
    ?(period = 0.2) () =
  let on = ref false in
  let proc =
    Smart_sim.Engine.every engine ~period ~start:(Smart_sim.Engine.now engine)
      (fun _now ->
        on := Smart_util.Prng.float rng ~bound:1.0 < p_on;
        clamp_load chan (if !on then on_load else off_load))
  in
  clamp_load chan off_load;
  { proc }
