lib/net/cross_traffic.ml: Float Link Smart_sim Smart_util
