lib/net/link.mli: Shaper Smart_util
