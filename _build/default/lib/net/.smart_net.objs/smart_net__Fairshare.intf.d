lib/net/fairshare.mli:
