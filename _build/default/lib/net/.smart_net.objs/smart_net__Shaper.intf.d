lib/net/shaper.mli:
