lib/net/shaper.ml: Float
