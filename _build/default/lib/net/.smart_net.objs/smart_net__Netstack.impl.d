lib/net/netstack.ml: Float Fmt Hashtbl Link List Packet Smart_sim Smart_util Topology
