lib/net/link.ml: Float Shaper Smart_util
