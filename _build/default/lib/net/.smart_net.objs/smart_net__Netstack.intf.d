lib/net/netstack.mli: Packet Smart_sim Smart_util Topology
