lib/net/topology.ml: Array Hashtbl Link List Queue
