lib/net/flow.ml: Array Fairshare Float Fmt Hashtbl Link List Smart_sim Topology
