lib/net/cross_traffic.mli: Link Smart_sim Smart_util
