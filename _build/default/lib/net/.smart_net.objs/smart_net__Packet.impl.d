lib/net/packet.ml: Fmt
