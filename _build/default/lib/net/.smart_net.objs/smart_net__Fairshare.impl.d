lib/net/fairshare.ml: Array Float List
