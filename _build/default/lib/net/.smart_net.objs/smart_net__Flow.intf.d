lib/net/flow.mli: Smart_sim Topology
