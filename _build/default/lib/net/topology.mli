(** Network topology: nodes, directional channels, static routing. *)

type nic = {
  mtu : int;             (** bytes, including IP header *)
  init_speed : float;    (** the paper's [Speed_init], bytes/second *)
  virtual_if : bool;     (** loopback/NAT: no interface-initialisation cost *)
  loopback_rate : float; (** node-local delivery rate, bytes/second *)
}

(** MTU 1500, init speed 25 Mbps, physical interface. *)
val default_nic : nic

type node = { id : int; name : string; ip : string; nic : nic }

type t

exception No_route of { src : int; dst : int }

val create : unit -> t

val node_count : t -> int

(** Node by id; raises [Invalid_argument] on a bad id. *)
val node : t -> int -> node

(** Register a node; names and IPs must be unique.  Returns the node id. *)
val add_node : ?nic:nic -> t -> name:string -> ip:string -> int

val find_by_name : t -> string -> int option

val find_by_ip : t -> string -> int option

(** Resolve a hostname or dotted IP to a node id. *)
val resolve : t -> string -> int option

(** Channel by id. *)
val channel : t -> int -> Link.t

(** One directional channel. *)
val add_channel : t -> src:int -> dst:int -> Link.conf -> Link.t

(** Bidirectional link: returns [(a_to_b, b_to_a)]. *)
val add_link : t -> a:int -> b:int -> Link.conf -> Link.t * Link.t

(** First channel on a shortest path, or [None] if unreachable. *)
val next_hop : t -> src:int -> dst:int -> Link.t option

(** Channel list from [src] to [dst] ([] when equal); raises [No_route]. *)
val path : t -> src:int -> dst:int -> Link.t list

val iter_channels : t -> (Link.t -> unit) -> unit
