(* Network topology: nodes with NIC parameters, bidirectional links made
   of two directional channels, and static shortest-path (hop count)
   routing computed by BFS on demand. *)

type nic = {
  mtu : int;             (* bytes, including IP header *)
  init_speed : float;    (* the paper's Speed_init, bytes/second *)
  virtual_if : bool;     (* loopback / VMware NAT: no init cost, no knee *)
  loopback_rate : float; (* bytes/second for node-local delivery *)
}

let default_nic =
  {
    mtu = 1500;
    init_speed = 25e6 /. 8.0;  (* estimated at 25 Mbps in the thesis *)
    virtual_if = false;
    loopback_rate = 4e9 /. 8.0;
  }

type node = { id : int; name : string; ip : string; nic : nic }

type t = {
  mutable nodes : node array;
  mutable channels : Link.t array;
  by_name : (string, int) Hashtbl.t;
  by_ip : (string, int) Hashtbl.t;
  (* adjacency: node id -> outgoing channel ids *)
  mutable adjacency : int list array;
  (* next_hop.(src).(dst) = outgoing channel id, or -1 *)
  mutable next_hop : int array array;
  mutable routes_dirty : bool;
}

let create () =
  {
    nodes = [||];
    channels = [||];
    by_name = Hashtbl.create 16;
    by_ip = Hashtbl.create 16;
    adjacency = [||];
    next_hop = [||];
    routes_dirty = true;
  }

let node_count t = Array.length t.nodes

let node t id =
  if id < 0 || id >= node_count t then invalid_arg "Topology.node: bad id";
  t.nodes.(id)

let add_node ?(nic = default_nic) t ~name ~ip =
  if Hashtbl.mem t.by_name name then
    invalid_arg ("Topology.add_node: duplicate name " ^ name);
  if Hashtbl.mem t.by_ip ip then
    invalid_arg ("Topology.add_node: duplicate ip " ^ ip);
  let id = node_count t in
  let n = { id; name; ip; nic } in
  t.nodes <- Array.append t.nodes [| n |];
  t.adjacency <- Array.append t.adjacency [| [] |];
  Hashtbl.replace t.by_name name id;
  Hashtbl.replace t.by_ip ip id;
  t.routes_dirty <- true;
  id

let find_by_name t name = Hashtbl.find_opt t.by_name name

let find_by_ip t ip = Hashtbl.find_opt t.by_ip ip

let resolve t key =
  match find_by_name t key with
  | Some id -> Some id
  | None -> find_by_ip t key

let channel t id =
  if id < 0 || id >= Array.length t.channels then
    invalid_arg "Topology.channel: bad id";
  t.channels.(id)

let add_channel t ~src ~dst conf =
  let id = Array.length t.channels in
  let c = Link.create ~id ~src ~dst conf in
  t.channels <- Array.append t.channels [| c |];
  t.adjacency.(src) <- id :: t.adjacency.(src);
  t.routes_dirty <- true;
  c

(* Bidirectional link: two independent channels with the same conf. *)
let add_link t ~a ~b conf =
  let fwd = add_channel t ~src:a ~dst:b conf in
  let rev = add_channel t ~src:b ~dst:a conf in
  (fwd, rev)

let recompute_routes t =
  let n = node_count t in
  t.next_hop <- Array.init n (fun _ -> Array.make n (-1));
  for src = 0 to n - 1 do
    (* BFS from [src]; record for every reached node the first channel
       taken out of [src] on a shortest path. *)
    let first_channel = Array.make n (-1) in
    let visited = Array.make n false in
    visited.(src) <- true;
    let q = Queue.create () in
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      let try_edge cid =
        let c = t.channels.(cid) in
        let v = c.Link.dst in
        if not visited.(v) then begin
          visited.(v) <- true;
          first_channel.(v) <- (if u = src then cid else first_channel.(u));
          Queue.add v q
        end
      in
      List.iter try_edge (List.rev t.adjacency.(u))
    done;
    Array.blit first_channel 0 t.next_hop.(src) 0 n
  done;
  t.routes_dirty <- false

let next_hop t ~src ~dst =
  if t.routes_dirty then recompute_routes t;
  let cid = t.next_hop.(src).(dst) in
  if cid < 0 then None else Some t.channels.(cid)

exception No_route of { src : int; dst : int }

(* Full channel path, raising when disconnected.  Paths are short, so we
   just chain next-hop lookups. *)
let path t ~src ~dst =
  if src = dst then []
  else begin
    let rec walk u acc guard =
      if guard > node_count t then raise (No_route { src; dst });
      match next_hop t ~src:u ~dst with
      | None -> raise (No_route { src; dst })
      | Some c ->
        if c.Link.dst = dst then List.rev (c :: acc)
        else walk c.Link.dst (c :: acc) (guard + 1)
    in
    walk src [] 0
  end

let iter_channels t f = Array.iter f t.channels
