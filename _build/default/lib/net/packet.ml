(* Datagram descriptors carried by the packet plane.  Sizes are payload
   bytes; per-fragment header overhead is added by the network stack. *)

type icmp =
  | Port_unreachable of { orig_id : int; orig_dport : int }
  | Time_exceeded of { orig_id : int; at_node : int }
  | Echo_request of { seq : int }
  | Echo_reply of { seq : int }

type proto =
  | Udp of { sport : int; dport : int }
  | Icmp of icmp

type t = {
  id : int;
  src : int;   (* node ids in the topology *)
  dst : int;
  proto : proto;
  size : int;  (* payload bytes *)
  ttl : int;   (* hops the datagram may still take *)
  sent_at : float;
  payload : string;  (* application bytes; "" when only timing matters *)
}

let pp_proto ppf = function
  | Udp { sport; dport } -> Fmt.pf ppf "udp %d->%d" sport dport
  | Icmp (Port_unreachable { orig_id; orig_dport }) ->
    Fmt.pf ppf "icmp port-unreachable (id=%d dport=%d)" orig_id orig_dport
  | Icmp (Time_exceeded { orig_id; at_node }) ->
    Fmt.pf ppf "icmp time-exceeded (id=%d at node %d)" orig_id at_node
  | Icmp (Echo_request { seq }) -> Fmt.pf ppf "icmp echo-request seq=%d" seq
  | Icmp (Echo_reply { seq }) -> Fmt.pf ppf "icmp echo-reply seq=%d" seq

let pp ppf t =
  Fmt.pf ppf "pkt#%d %d->%d %a %dB t=%.6f" t.id t.src t.dst pp_proto t.proto
    t.size t.sent_at
