(* Flow plane: bulk TCP-like transfers as fluid flows.

   Whenever the set of active flows changes, progress since the previous
   change is banked, max-min fair rates are recomputed, the per-channel
   [flow_load] (seen by the packet plane as background utilisation) is
   refreshed, and the next completion event is (re)scheduled. *)

type stats = {
  flow_id : int;
  src : int;
  dst : int;
  bytes : int;
  started_at : float;
  finished_at : float;
  throughput : float;  (* bytes per second *)
}

type flow = {
  id : int;
  src : int;
  dst : int;
  links : Link.t list;
  total : float;
  mutable remaining : float;
  started_at : float;
  mutable rate : float;
  on_complete : stats -> unit;
}

type t = {
  engine : Smart_sim.Engine.t;
  topo : Topology.t;
  mutable flows : flow list;
  mutable next_id : int;
  mutable last_update : float;
  mutable completion : Smart_sim.Engine.handle option;
  mutable on_progress : (src:int -> dst:int -> float -> unit) option;
  local_rate : float;  (* node-local transfer rate, bytes/second *)
  trace : Smart_sim.Trace.t option;
}

let create ?(local_rate = 4e9 /. 8.0) ?trace ~engine ~topo () =
  {
    engine;
    topo;
    flows = [];
    next_id = 0;
    last_update = 0.0;
    completion = None;
    on_progress = None;
    local_rate;
    trace;
  }

let tr t fmt =
  match t.trace with
  | Some trace ->
    Smart_sim.Trace.recordf trace ~now:(Smart_sim.Engine.now t.engine)
      ~category:"flow" fmt
  | None -> Fmt.kstr (fun _ -> ()) fmt

let set_progress_hook t hook = t.on_progress <- hook

let active_count t = List.length t.flows

let flow_rate t ~flow_id =
  List.find_map (fun f -> if f.id = flow_id then Some f.rate else None) t.flows

(* Bank the bytes moved since [last_update] at the current rates. *)
let bank_progress t ~now =
  let dt = now -. t.last_update in
  if dt > 0.0 then
    List.iter
      (fun f ->
        let delta = Float.min f.remaining (f.rate *. dt) in
        if delta > 0.0 then begin
          f.remaining <- f.remaining -. delta;
          match t.on_progress with
          | None -> ()
          | Some hook -> hook ~src:f.src ~dst:f.dst delta
        end)
      t.flows;
  t.last_update <- now

let recompute_rates t =
  let flows = Array.of_list t.flows in
  (* collect and index the distinct channels in use *)
  let table = Hashtbl.create 16 in
  let rev_channels = ref [] in
  let index_of (c : Link.t) =
    match Hashtbl.find_opt table c.Link.id with
    | Some i -> i
    | None ->
      let i = Hashtbl.length table in
      Hashtbl.replace table c.Link.id i;
      rev_channels := c :: !rev_channels;
      i
  in
  let flow_links = Array.map (fun f -> List.map index_of f.links) flows in
  let channels = Array.of_list (List.rev !rev_channels) in
  let capacities = Array.map Link.capacity_for_flows channels in
  let rates = Fairshare.rates ~capacities ~flows:flow_links in
  Array.iteri
    (fun i f ->
      f.rate <- (if f.links = [] then t.local_rate else rates.(i)))
    flows;
  (* publish the aggregate flow load to the packet plane *)
  Array.iter (fun (c : Link.t) -> c.Link.flow_load <- 0.0) channels;
  Array.iter
    (fun f ->
      List.iter
        (fun (c : Link.t) -> c.Link.flow_load <- c.Link.flow_load +. f.rate)
        f.links)
    flows

let stats_of f ~now =
  let duration = Float.max 1e-9 (now -. f.started_at) in
  {
    flow_id = f.id;
    src = f.src;
    dst = f.dst;
    bytes = int_of_float f.total;
    started_at = f.started_at;
    finished_at = now;
    throughput = f.total /. duration;
  }

let rec schedule_next_completion t =
  (match t.completion with
  | Some h ->
    Smart_sim.Engine.cancel h;
    t.completion <- None
  | None -> ());
  let eta =
    List.fold_left
      (fun acc f ->
        if f.rate > 0.0 then Float.min acc (f.remaining /. f.rate) else acc)
      Float.infinity t.flows
  in
  if eta < Float.infinity then
    t.completion <-
      Some
        (Smart_sim.Engine.schedule_at t.engine
           ~time:(t.last_update +. Float.max eta 0.0)
           (fun () -> update t))

(* Re-synchronise the flow plane with the clock: bank progress, detach
   finished flows, recompute rates, re-arm the next completion, and only
   then fire completion callbacks (which may start new flows and
   re-enter [update] safely). *)
and update t =
  let now = Smart_sim.Engine.now t.engine in
  bank_progress t ~now;
  let finished, running = List.partition (fun f -> f.remaining <= 0.5) t.flows in
  t.flows <- running;
  recompute_rates t;
  schedule_next_completion t;
  List.iter
    (fun f ->
      let stats = stats_of f ~now in
      tr t "flow#%d %d->%d complete: %d B in %.3f s (%.0f B/s)" f.id f.src
        f.dst stats.bytes (now -. f.started_at) stats.throughput;
      f.on_complete stats)
    finished

let start t ~src ~dst ~bytes ~on_complete =
  if bytes <= 0 then invalid_arg "Flow.start: bytes must be positive";
  let now = Smart_sim.Engine.now t.engine in
  bank_progress t ~now;
  let links = if src = dst then [] else Topology.path t.topo ~src ~dst in
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let f =
    {
      id;
      src;
      dst;
      links;
      total = float_of_int bytes;
      remaining = float_of_int bytes;
      started_at = now;
      rate = 0.0;
      on_complete;
    }
  in
  t.flows <- f :: t.flows;
  recompute_rates t;
  schedule_next_completion t;
  tr t "flow#%d %d->%d start: %d B (rate %.0f B/s)" id src dst bytes f.rate;
  id

(* Kill a flow without firing its callback (failure injection). *)
let abort t ~flow_id =
  let now = Smart_sim.Engine.now t.engine in
  bank_progress t ~now;
  let before = List.length t.flows in
  t.flows <- List.filter (fun f -> f.id <> flow_id) t.flows;
  let removed = List.length t.flows < before in
  if removed then begin
    tr t "flow#%d aborted" flow_id;
    recompute_rates t;
    schedule_next_completion t
  end;
  removed
