(** Packet plane: UDP with IP fragmentation, ICMP port-unreachable, and
    per-hop store-and-forward forwarding over the topology.

    Implements the delay model of the paper's Formula (3.6): bottleneck
    residual-rate serialisation, interface initialisation cost capped at
    one MTU, and end-host processing overhead. *)

val ip_header : int
val udp_header : int
val icmp_wire_size : int

type handler = now:float -> Packet.t -> unit

type t

(** [create ~engine ~topo ~rng ()] builds a stack over an existing
    topology.  [sys_overhead] is the mean per-datagram end-host cost. *)
val create :
  ?sys_overhead:float ->
  ?sys_overhead_noise:float ->
  ?trace:Smart_sim.Trace.t ->
  engine:Smart_sim.Engine.t ->
  topo:Topology.t ->
  rng:Smart_util.Prng.t ->
  unit ->
  t

val engine : t -> Smart_sim.Engine.t

val topology : t -> Topology.t

(** Install an accounting hook called with the wire bytes of every
    transmitted fragment ([src]/[dst] are the channel endpoints). *)
val set_byte_hook : t -> (src:int -> dst:int -> int -> unit) option -> unit

(** Register a UDP listener on [(node, port)]. *)
val listen_udp : t -> node:int -> port:int -> handler -> unit

val unlisten_udp : t -> node:int -> port:int -> unit

(** Register the ICMP handler of a node (one per node). *)
val on_icmp : t -> node:int -> handler -> unit

(** Fragment wire sizes (IP header included) for a transport payload. *)
val fragment_sizes : mtu:int -> payload:int -> int list

(** [send_udp t ~src ~dst ~sport ~dport ~size] emits a datagram with
    [size] application bytes; returns the datagram id.  Unlistened
    destination ports trigger an ICMP port-unreachable reply; a datagram
    whose [ttl] (default 64) runs out triggers an ICMP time-exceeded
    from the router where it died. *)
val send_udp :
  ?payload:string ->
  ?ttl:int ->
  t ->
  src:int ->
  dst:int ->
  sport:int ->
  dport:int ->
  size:int ->
  int

(** Emit a bare ICMP message. *)
val send_icmp : t -> src:int -> dst:int -> Packet.icmp -> int
