(** Flow plane: bulk TCP-like transfers modelled as max-min fair fluid
    flows over the topology.  Rates are recomputed whenever a flow starts
    or finishes; aggregate flow load is published to the packet plane as
    background utilisation. *)

type stats = {
  flow_id : int;
  src : int;
  dst : int;
  bytes : int;
  started_at : float;
  finished_at : float;
  throughput : float;  (** bytes per second *)
}

type t

(** [create ~engine ~topo ()]; [local_rate] bounds node-local transfers;
    a [trace] records flow start/complete/abort events. *)
val create :
  ?local_rate:float ->
  ?trace:Smart_sim.Trace.t ->
  engine:Smart_sim.Engine.t ->
  topo:Topology.t ->
  unit ->
  t

(** Accounting hook fired with every banked byte delta of every flow. *)
val set_progress_hook : t -> (src:int -> dst:int -> float -> unit) option -> unit

(** Number of in-flight flows. *)
val active_count : t -> int

(** Current fair rate of a flow, if still active. *)
val flow_rate : t -> flow_id:int -> float option

(** [start t ~src ~dst ~bytes ~on_complete] launches a transfer and
    returns its flow id.  [on_complete] fires exactly once, at the virtual
    time the last byte is delivered. *)
val start :
  t -> src:int -> dst:int -> bytes:int -> on_complete:(stats -> unit) -> int

(** Abort an active flow without firing its callback; [true] if found. *)
val abort : t -> flow_id:int -> bool
