(* Packet plane: UDP datagrams with IP fragmentation, per-hop
   store-and-forward forwarding over the topology channels, reassembly,
   ICMP port-unreachable generation, and listener dispatch.

   Delay model per datagram of payload S (paper Formula 3.6):
     T = S/B + min(S', MTU)/Speed_init + Overhead_sys + Overhead_net
   where B is the bottleneck residual rate, S' the first-fragment wire
   size; the init term is skipped on virtual interfaces. *)

let ip_header = 20
let udp_header = 8
let icmp_wire_size = 56

type handler = now:float -> Packet.t -> unit

type pending = {
  packet : Packet.t;
  mutable fragments_left : int;
  mutable last_arrival : float;
}

type t = {
  engine : Smart_sim.Engine.t;
  topo : Topology.t;
  rng : Smart_util.Prng.t;
  mutable next_id : int;
  listeners : (int * int, handler) Hashtbl.t;       (* (node, port) *)
  icmp_handlers : (int, handler) Hashtbl.t;          (* node *)
  reassembly : (int, pending) Hashtbl.t;             (* packet id *)
  mutable on_bytes : (src:int -> dst:int -> int -> unit) option;
  sys_overhead : float;     (* per-datagram end-host processing, seconds *)
  sys_overhead_noise : float;
  trace : Smart_sim.Trace.t option;
}

let create ?(sys_overhead = 60e-6) ?(sys_overhead_noise = 8e-6) ?trace ~engine
    ~topo ~rng () =
  {
    engine;
    topo;
    rng;
    next_id = 0;
    listeners = Hashtbl.create 64;
    icmp_handlers = Hashtbl.create 16;
    reassembly = Hashtbl.create 64;
    on_bytes = None;
    sys_overhead;
    sys_overhead_noise;
    trace;
  }

(* Record a trace line when a trace is attached (no formatting cost
   otherwise). *)
let tr t ~now fmt =
  match t.trace with
  | Some trace -> Smart_sim.Trace.recordf trace ~now ~category:"net" fmt
  | None -> Fmt.kstr (fun _ -> ()) fmt

let engine t = t.engine

let topology t = t.topo

let set_byte_hook t hook = t.on_bytes <- hook

let listen_udp t ~node ~port handler =
  Hashtbl.replace t.listeners (node, port) handler

let unlisten_udp t ~node ~port = Hashtbl.remove t.listeners (node, port)

let on_icmp t ~node handler = Hashtbl.replace t.icmp_handlers node handler

let overhead t =
  t.sys_overhead
  +. Float.abs
       (Smart_util.Prng.gaussian t.rng ~mu:0.0 ~sigma:t.sys_overhead_noise)

(* Fragment wire sizes for a datagram of [payload] transport bytes
   (UDP header included by the caller) through an interface of [mtu]. *)
let fragment_sizes ~mtu ~payload =
  let max_frag = mtu - ip_header in
  if max_frag <= 0 then invalid_arg "Netstack.fragment_sizes: mtu too small";
  let rec cut remaining acc =
    if remaining <= 0 then List.rev acc
    else begin
      let chunk = min remaining max_frag in
      cut (remaining - chunk) ((chunk + ip_header) :: acc)
    end
  in
  cut (max 1 payload) []

(* The paper's interface initialisation cost: the first frame is pushed to
   the physical interface at Speed_init; capped at one MTU of data. *)
let init_cost nic ~wire_total =
  if nic.Topology.virtual_if then 0.0
  else float_of_int (min wire_total nic.Topology.mtu) /. nic.Topology.init_speed

let count_bytes t ~src ~dst size =
  match t.on_bytes with
  | None -> ()
  | Some f -> f ~src ~dst size

let rec deliver t (pkt : Packet.t) ~now =
  match pkt.proto with
  | Packet.Udp { dport; _ } ->
    (match Hashtbl.find_opt t.listeners (pkt.dst, dport) with
    | Some h ->
      tr t ~now "deliver %a" Packet.pp pkt;
      h ~now pkt
    | None ->
      tr t ~now "port-unreachable %a" Packet.pp pkt;
      (* closed port: ICMP port unreachable back to the sender *)
      let reply =
        Packet.Icmp
          (Packet.Port_unreachable { orig_id = pkt.id; orig_dport = dport })
      in
      ignore
        (send_raw t ~src:pkt.dst ~dst:pkt.src ~proto:reply
           ~transport_bytes:(icmp_wire_size - ip_header) ~payload:"" ~now))
  | Packet.Icmp (Packet.Echo_request { seq }) ->
    (* every host answers pings; a handler may additionally observe them *)
    (match Hashtbl.find_opt t.icmp_handlers pkt.dst with
    | Some h -> h ~now pkt
    | None -> ());
    ignore
      (send_raw t ~src:pkt.dst ~dst:pkt.src
         ~proto:(Packet.Icmp (Packet.Echo_reply { seq }))
         ~transport_bytes:(icmp_wire_size - ip_header) ~payload:"" ~now)
  | Packet.Icmp _ ->
    (match Hashtbl.find_opt t.icmp_handlers pkt.dst with
    | Some h -> h ~now pkt
    | None -> ())

and forward_fragment t pkt ~at_node ~hops ~now ~size =
  if at_node = pkt.Packet.dst then begin
    match Hashtbl.find_opt t.reassembly pkt.Packet.id with
    | None -> ()  (* some sibling fragment was lost; datagram dropped *)
    | Some pending ->
      pending.fragments_left <- pending.fragments_left - 1;
      pending.last_arrival <- Float.max pending.last_arrival now;
      if pending.fragments_left = 0 then begin
        Hashtbl.remove t.reassembly pkt.Packet.id;
        let finish = pending.last_arrival +. overhead t in
        ignore
          (Smart_sim.Engine.schedule_at t.engine ~time:finish (fun () ->
               deliver t pending.packet ~now:finish))
      end
  end
  else if hops >= pkt.Packet.ttl then begin
    (* TTL exhausted: one Time-Exceeded per datagram, from this router *)
    if Hashtbl.mem t.reassembly pkt.Packet.id then begin
      Hashtbl.remove t.reassembly pkt.Packet.id;
      tr t ~now "ttl-exceeded %a at node %d" Packet.pp pkt at_node;
      ignore
        (send_raw t ~src:at_node ~dst:pkt.Packet.src
           ~proto:
             (Packet.Icmp
                (Packet.Time_exceeded
                   { orig_id = pkt.Packet.id; at_node }))
           ~transport_bytes:(icmp_wire_size - ip_header) ~payload:"" ~now)
    end
  end
  else begin
    match Topology.next_hop t.topo ~src:at_node ~dst:pkt.Packet.dst with
    | None ->
      tr t ~now "unroutable %a at node %d" Packet.pp pkt at_node;
      Hashtbl.remove t.reassembly pkt.Packet.id  (* unroutable: drop *)
    | Some chan ->
      (match Link.transmit chan ~rng:t.rng ~now ~size with
      | None ->
        tr t ~now "lost fragment of %a on link %d" Packet.pp pkt
          chan.Link.id;
        Hashtbl.remove t.reassembly pkt.Packet.id  (* lost *)
      | Some arrival ->
        count_bytes t ~src:at_node ~dst:chan.Link.dst size;
        ignore
          (Smart_sim.Engine.schedule_at t.engine ~time:arrival (fun () ->
               forward_fragment t pkt ~at_node:chan.Link.dst ~hops:(hops + 1)
                 ~now:arrival ~size)))
  end

(* Emit a datagram: fragment, pay the interface-initialisation cost on the
   first fragment, then push fragments back-to-back into the first hop. *)
and send_raw ?(ttl = 64) t ~src ~dst ~proto ~transport_bytes ~payload ~now =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let pkt =
    {
      Packet.id;
      src;
      dst;
      proto;
      size = transport_bytes;
      ttl;
      sent_at = now;
      payload;
    }
  in
  if src = dst then begin
    (* node-local delivery: loopback interface, no fragmentation knee and
       a fraction of the end-host cost (no NIC or driver involved) *)
    let nic = (Topology.node t.topo src).Topology.nic in
    let delay =
      (overhead t /. 3.0)
      +. (float_of_int transport_bytes /. nic.Topology.loopback_rate)
    in
    let at = now +. delay in
    ignore
      (Smart_sim.Engine.schedule_at t.engine ~time:at (fun () ->
           deliver t pkt ~now:at))
  end
  else begin
    let nic = (Topology.node t.topo src).Topology.nic in
    let frags = fragment_sizes ~mtu:nic.Topology.mtu ~payload:transport_bytes in
    let wire_total = List.fold_left ( + ) 0 frags in
    Hashtbl.replace t.reassembly id
      {
        packet = pkt;
        fragments_left = List.length frags;
        last_arrival = now;
      };
    let depart = now +. overhead t +. init_cost nic ~wire_total in
    (* Fragments enter the first channel at the same instant; its FIFO
       [busy_until] serialises them back-to-back. *)
    List.iter
      (fun size ->
        ignore
          (Smart_sim.Engine.schedule_at t.engine ~time:depart (fun () ->
               forward_fragment t pkt ~at_node:src ~hops:0 ~now:depart ~size)))
      frags
  end;
  id

let send_udp ?(payload = "") ?ttl t ~src ~dst ~sport ~dport ~size =
  let now = Smart_sim.Engine.now t.engine in
  send_raw ?ttl t ~src ~dst
    ~proto:(Packet.Udp { sport; dport })
    ~transport_bytes:(size + udp_header) ~payload ~now

let send_icmp t ~src ~dst icmp =
  let now = Smart_sim.Engine.now t.engine in
  send_raw t ~src ~dst ~proto:(Packet.Icmp icmp)
    ~transport_bytes:(icmp_wire_size - ip_header) ~payload:"" ~now
