(* Table 3.3 / Fig 3.7: one-way UDP stream bandwidth estimates for the
   seven (S1, S2) probe-size groups of the thesis, against the pipechar
   (packet pair) and pathload (SLoPS) baselines, on the 100 Mbps
   sagit->suna path.  The sub-MTU groups must under-estimate (~20 Mbps)
   because of the interface initialisation speed; the 1600~2900 group is
   the thesis's optimum. *)

type group_row = {
  label : string;
  s1 : int;
  s2 : int;
  min_bw : float;  (* Mbps *)
  max_bw : float;
  avg_bw : float;
  paper_avg : float option;  (* Mbps, Table 3.3 *)
}

type report = {
  groups : group_row list;
  pipechar_bw : float option;      (* Mbps *)
  pipechar_reliability : float option;
  pathload_low : float;            (* Mbps *)
  pathload_high : float;
}

let size_groups =
  [
    (100, 500, Some 20.01);
    (500, 1000, Some 18.39);
    (100, 1000, Some 18.33);
    (2000, 4000, Some 88.12);
    (4000, 6000, Some 81.79);
    (2000, 6000, Some 83.54);
    (1600, 2900, Some 92.86);
  ]

let mbps = Smart_util.Units.bytes_per_sec_to_mbps

let run ?(trials = 10) () =
  let fixture = Smart_host.Testbed.paths () in
  let stack = Smart_host.Cluster.stack fixture.Smart_host.Testbed.cluster in
  let src = fixture.Smart_host.Testbed.sagit in
  let dst = fixture.Smart_host.Testbed.suna in
  let groups =
    List.map
      (fun (s1, s2, paper_avg) ->
        match Smart_measure.Udp_stream.measure ~s1 ~s2 ~trials stack ~src ~dst () with
        | Some r ->
          {
            label = Printf.sprintf "%d~%d" s1 s2;
            s1;
            s2;
            min_bw = mbps r.Smart_measure.Udp_stream.min_bw;
            max_bw = mbps r.Smart_measure.Udp_stream.max_bw;
            avg_bw = mbps r.Smart_measure.Udp_stream.avg_bw;
            paper_avg;
          }
        | None ->
          {
            label = Printf.sprintf "%d~%d" s1 s2;
            s1;
            s2;
            min_bw = 0.0;
            max_bw = 0.0;
            avg_bw = 0.0;
            paper_avg;
          })
      size_groups
  in
  let pipechar = Smart_measure.Packet_pair.measure ~trials:20 stack ~src ~dst () in
  let pathload = Smart_measure.Slops.measure stack ~src ~dst () in
  {
    groups;
    pipechar_bw =
      Option.map (fun r -> mbps r.Smart_measure.Packet_pair.median_bw) pipechar;
    pipechar_reliability =
      Option.map (fun r -> r.Smart_measure.Packet_pair.reliability) pipechar;
    pathload_low = mbps pathload.Smart_measure.Slops.low;
    pathload_high = mbps pathload.Smart_measure.Slops.high;
  }

let print (r : report) =
  let tab =
    Smart_util.Tabular.create
      ~title:"Table 3.3 / Fig 3.7: bandwidth vs probe packet size"
      ~header:
        [ "Packet Size(Bytes)"; "Min Bw(Mbps)"; "Max Bw"; "Avg Bw"; "Paper Avg" ]
  in
  List.iter
    (fun g ->
      Smart_util.Tabular.add_row tab
        [
          g.label;
          Fmt.str "%.2f" g.min_bw;
          Fmt.str "%.2f" g.max_bw;
          Fmt.str "%.2f" g.avg_bw;
          (match g.paper_avg with Some p -> Fmt.str "%.2f" p | None -> "-");
        ])
    r.groups;
  (match (r.pipechar_bw, r.pipechar_reliability) with
  | Some bw, Some rel ->
    Smart_util.Tabular.add_row tab
      [ "pipechar"; "-"; "-"; Fmt.str "%.2f" bw; "95.35" ];
    Smart_util.Tabular.add_row tab
      [ "  (reliability)"; "-"; "-"; Fmt.str "%.0f%%" (100.0 *. rel); "66%" ]
  | _ ->
    Smart_util.Tabular.add_row tab [ "pipechar"; "-"; "-"; "failed"; "95.35" ]);
  Smart_util.Tabular.add_row tab
    [
      "pathload";
      Fmt.str "%.1f" r.pathload_low;
      Fmt.str "%.1f" r.pathload_high;
      "-";
      "96.1~101.3";
    ];
  Smart_util.Tabular.print tab
