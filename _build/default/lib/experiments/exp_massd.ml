(* Fig 5.3 and Tables 5.7-5.9 / Figs 5.4-5.6: the massive download
   experiments.

   Fig 5.3 calibrates the shaper against massd: for ten (data, blk, bw)
   samples with bw = 1% of data, the achieved throughput must track the
   shaped bandwidth.  The table experiments split six file servers into
   two rshaper-limited groups and compare the thesis's random server sets
   against smart selection with a `monitor_network_bw > X` requirement —
   the bandwidth figure coming from the deployed network monitor probing
   through the very same shapers. *)

let group1 = [ "mimas"; "telesto"; "lhost" ]
let group2 = [ "dione"; "titan-x"; "pandora-x" ]

let mbps_to_Bps = Smart_util.Units.mbps_to_bytes_per_sec
let to_kBps = Smart_util.Units.bytes_per_sec_to_kBps

(* ------------------------------------------------------------------ *)
(* Fig 5.3: rshaper vs massd calibration                                *)
(* ------------------------------------------------------------------ *)

type calibration_sample = {
  data_kb : int;
  blk_kb : int;
  set_kBps : float;
  achieved_kBps : float;
}

let calibration ?(samples = 10) () =
  List.init samples (fun i ->
      let data_kb = 10000 + (i * 10000) in
      let blk_kb = data_kb / 100 in
      let set_kBps = float_of_int data_kb /. 100.0 in  (* bw = 1% of data *)
      let c = Smart_host.Testbed.icpp2005 ~seed:(100 + i) () in
      let server = Smart_host.Cluster.resolve_exn c "lhost" in
      let client = Smart_host.Cluster.resolve_exn c "sagit" in
      ignore
        (Smart_host.Cluster.shape_access c ~node:server
           ~rate_bytes_per_sec:(Some (set_kBps *. 1024.0)));
      let r =
        Smart_apps.Massd.run c ~client ~servers:[ server ] ~data_kb ~blk_kb
      in
      {
        data_kb;
        blk_kb;
        set_kBps;
        achieved_kBps = to_kBps r.Smart_apps.Massd.throughput;
      })

let print_calibration rows =
  let tab =
    Smart_util.Tabular.create
      ~title:"Fig 5.3: rshaper vs massd calibration (bw = 1% of data)"
      ~header:[ "data (KB)"; "blk (KB)"; "set (KB/s)"; "achieved (KB/s)" ]
  in
  List.iter
    (fun s ->
      Smart_util.Tabular.add_row tab
        [
          string_of_int s.data_kb;
          string_of_int s.blk_kb;
          Fmt.str "%.0f" s.set_kBps;
          Fmt.str "%.0f" s.achieved_kBps;
        ])
    rows;
  Smart_util.Tabular.print tab

(* ------------------------------------------------------------------ *)
(* Tables 5.7-5.9                                                       *)
(* ------------------------------------------------------------------ *)

type run_row = { label : string; servers : string list; kBps : float; paper_kBps : float option }

type table = {
  title : string;
  group1_mbps : float;
  group2_mbps : float;
  requirement : string;
  rows : run_row list;  (* random sets then the smart set, smart last *)
}

(* Build the shaped testbed and return (cluster builder, smart servers).
   Selection runs on a deployed stack whose netmon measures through the
   shapers; timing runs use fresh clusters with identical shaping. *)
let shaped_cluster ~seed ~g1_mbps ~g2_mbps () =
  let c = Smart_host.Testbed.icpp2005 ~seed () in
  let shape hosts mbps =
    List.iter
      (fun h ->
        ignore
          (Smart_host.Cluster.shape_access c
             ~node:(Smart_host.Cluster.resolve_exn c h)
             ~rate_bytes_per_sec:(Some (mbps_to_Bps mbps))))
      hosts
  in
  shape group1 g1_mbps;
  shape group2 g2_mbps;
  c

let smart_select ~g1_mbps ~g2_mbps ~wanted ~requirement =
  let c = shaped_cluster ~seed:21 ~g1_mbps ~g2_mbps () in
  let d =
    Smart_core.Simdriver.deploy c ~monitor:"dalmatian" ~wizard_host:"dalmatian"
      ~servers:(group1 @ group2)
  in
  Smart_core.Simdriver.settle ~duration:6.0 d;
  ignore (Smart_core.Simdriver.refresh_netmon ~trials:3 d);
  match Smart_core.Simdriver.request d ~client:"sagit" ~wanted ~requirement with
  | Ok servers -> servers
  | Error e ->
    failwith (Fmt.str "massd smart selection failed: %a" Smart_core.Client.pp_error e)

let timed_download ~seed ~g1_mbps ~g2_mbps ~servers ~data_kb ~blk_kb =
  let c = shaped_cluster ~seed ~g1_mbps ~g2_mbps () in
  let resolve = Smart_host.Cluster.resolve_exn c in
  let r =
    Smart_apps.Massd.run c
      ~client:(resolve "sagit")
      ~servers:(List.map resolve servers)
      ~data_kb ~blk_kb
  in
  to_kBps r.Smart_apps.Massd.throughput

type setup = {
  title : string;
  g1_mbps : float;
  g2_mbps : float;
  wanted : int;
  requirement : string;
  random_sets : (string * string list * float option) list;
  paper_smart : float option;
}

let setups =
  [
    {
      title = "Table 5.7 / Fig 5.4: 1 vs 1 massd";
      g1_mbps = 6.72;
      g2_mbps = 1.33;
      wanted = 1;
      requirement = "monitor_network_bw > 6\n";
      random_sets = [ ("Random", [ "pandora-x" ], Some 170.0) ];
      paper_smart = Some 860.0;
    };
    {
      title = "Table 5.8 / Fig 5.5: 2 vs 2 massd";
      g1_mbps = 5.01;
      g2_mbps = 7.67;
      wanted = 2;
      requirement = "monitor_network_bw > 7\n";
      random_sets =
        [
          ("Random1 (0 fast)", [ "mimas"; "telesto" ], Some 660.0);
          ("Random2 (1 fast)", [ "telesto"; "titan-x" ], Some 795.0);
        ];
      paper_smart = Some 994.0;
    };
    {
      title = "Table 5.9 / Fig 5.6: 3 vs 3 massd";
      g1_mbps = 5.99;
      g2_mbps = 2.92;
      wanted = 3;
      requirement = "monitor_network_bw > 5\n";
      random_sets =
        [
          ("Random1 (0 fast)", [ "dione"; "titan-x"; "pandora-x" ], Some 387.0);
          ("Random2 (1 fast)", [ "mimas"; "titan-x"; "dione" ], Some 520.0);
          ("Random3 (2 fast)", [ "telesto"; "mimas"; "dione" ], Some 634.0);
        ];
      paper_smart = Some 796.0;
    };
  ]

let run_setup ?(data_kb = 50000) ?(blk_kb = 100) (s : setup) =
  let smart =
    smart_select ~g1_mbps:s.g1_mbps ~g2_mbps:s.g2_mbps ~wanted:s.wanted
      ~requirement:s.requirement
  in
  let rows =
    List.mapi
      (fun i (label, servers, paper) ->
        {
          label;
          servers;
          kBps =
            timed_download ~seed:(40 + i) ~g1_mbps:s.g1_mbps ~g2_mbps:s.g2_mbps
              ~servers ~data_kb ~blk_kb;
          paper_kBps = paper;
        })
      s.random_sets
    @ [
        {
          label = "Smart";
          servers = smart;
          kBps =
            timed_download ~seed:60 ~g1_mbps:s.g1_mbps ~g2_mbps:s.g2_mbps
              ~servers:smart ~data_kb ~blk_kb;
          paper_kBps = s.paper_smart;
        };
      ]
  in
  {
    title = s.title;
    group1_mbps = s.g1_mbps;
    group2_mbps = s.g2_mbps;
    requirement = s.requirement;
    rows;
  }

let run_all ?data_kb ?blk_kb () = List.map (run_setup ?data_kb ?blk_kb) setups

let print_table (t : table) =
  let tab =
    Smart_util.Tabular.create ~title:t.title
      ~header:[ "Set"; "Servers"; "KB/s"; "Paper KB/s" ]
  in
  Smart_util.Tabular.add_row tab
    [ "Group-1 bw"; Fmt.str "%.2f Mbps" t.group1_mbps; ""; "" ];
  Smart_util.Tabular.add_row tab
    [ "Group-2 bw"; Fmt.str "%.2f Mbps" t.group2_mbps; ""; "" ];
  Smart_util.Tabular.add_row tab
    [ "Server Req"; String.trim t.requirement; ""; "" ];
  List.iter
    (fun r ->
      Smart_util.Tabular.add_row tab
        [
          r.label;
          String.concat "," r.servers;
          Fmt.str "%.0f" r.kBps;
          (match r.paper_kBps with Some p -> Fmt.str "%.0f" p | None -> "-");
        ])
    t.rows;
  Smart_util.Tabular.print tab
