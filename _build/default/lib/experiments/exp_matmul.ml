(* Fig 5.2 and Tables 5.3-5.6: the distributed matrix multiplication
   experiments, random server selection vs the Smart socket library.

   Each comparison follows the thesis protocol: deploy the full stack on
   the 11-machine testbed, let the probes report, issue the smart request
   with the paper's requirement text, then execute the same computation
   once with the paper's random server set and once with the smart set,
   each on a fresh cluster (separate runs, as on the real testbed). *)

type comparison = {
  title : string;
  matrix : string;
  requirement : string;
  workloads : string list;  (* hosts running SuperPI during the run *)
  random_servers : string list;
  smart_servers : string list;
  random_time : float;
  smart_time : float;
  paper_random : float;
  paper_smart : float;
}

let improvement c = 100.0 *. (1.0 -. (c.smart_time /. c.random_time))

(* ------------------------------------------------------------------ *)
(* Fig 5.2: single-machine benchmark                                    *)
(* ------------------------------------------------------------------ *)

type benchmark_row = { host : string; cpu : string; seconds : float }

let benchmark ?(n = 1500) () =
  let c = Smart_host.Testbed.icpp2005 () in
  List.map
    (fun name ->
      let node = Smart_host.Cluster.resolve_exn c name in
      let machine = Smart_host.Cluster.machine c node in
      let spec = Smart_host.Machine.spec machine in
      {
        host = name;
        cpu = spec.Smart_host.Machine.cpu_model;
        seconds = Smart_apps.Matmul.local_time ~machine ~n;
      })
    Smart_host.Testbed.machine_names

let print_benchmark rows =
  let tab =
    Smart_util.Tabular.create
      ~title:"Fig 5.2: matrix benchmark per machine (1500x1500, local)"
      ~header:[ "Host"; "CPU"; "time (s)" ]
  in
  List.iter
    (fun r ->
      Smart_util.Tabular.add_row tab
        [ r.host; r.cpu; Fmt.str "%.1f" r.seconds ])
    rows;
  Smart_util.Tabular.print tab;
  Fmt.pr
    "  paper shape: P3-866 and P4-2.4 out-perform the P4-1.6~1.8 machines@.@."

(* ------------------------------------------------------------------ *)
(* Tables 5.3-5.6                                                       *)
(* ------------------------------------------------------------------ *)

let superpi_hosts_of workloads cluster =
  List.iter
    (fun host ->
      let node = Smart_host.Cluster.resolve_exn cluster host in
      let machine = Smart_host.Cluster.machine cluster node in
      ignore
        (Smart_host.Machine.add_workload machine
           ~now:(Smart_host.Cluster.now cluster)
           Smart_host.Machine.superpi))
    workloads

(* One timed run of the distributed multiplication on a fresh cluster. *)
let timed_run ~servers ~workloads ~n ~blk =
  let c = Smart_host.Testbed.icpp2005 () in
  superpi_hosts_of workloads c;
  (* loads need time to build up before the computation starts *)
  if workloads <> [] then
    Smart_sim.Engine.run (Smart_host.Cluster.engine c) ~until:120.0;
  let resolve = Smart_host.Cluster.resolve_exn c in
  let result =
    Smart_apps.Matmul.run c ~master:(resolve "sagit")
      ~workers:(List.map resolve servers)
      ~n ~blk
  in
  result.Smart_apps.Matmul.makespan

(* Smart selection through the full deployed stack. *)
let smart_select ~pool ~workloads ~wanted ~requirement =
  let c = Smart_host.Testbed.icpp2005 () in
  superpi_hosts_of workloads c;
  let d =
    Smart_core.Simdriver.deploy c ~monitor:"dalmatian" ~wizard_host:"dalmatian"
      ~servers:pool
  in
  (* settle long enough for load averages to reflect the workloads *)
  Smart_core.Simdriver.settle ~duration:(if workloads = [] then 8.0 else 120.0) d;
  match Smart_core.Simdriver.request d ~client:"sagit" ~wanted ~requirement with
  | Ok servers -> servers
  | Error e -> failwith (Fmt.str "smart selection failed: %a" Smart_core.Client.pp_error e)

let all_machines = Smart_host.Testbed.machine_names

let p4_pool =
  [ "mimas"; "telesto"; "helene"; "phoebe"; "calypso"; "titan-x"; "pandora-x" ]

type setup = {
  title : string;
  n : int;
  blk : int;
  wanted : int;
  requirement : string;
  pool : string list;
  workloads : string list;
  paper_random_servers : string list;
  paper_random : float;
  paper_smart : float;
}

let setups =
  [
    {
      title = "Table 5.3: 2 vs 2 under zero workload";
      n = 1500;
      blk = 600;
      wanted = 2;
      requirement =
        "(host_cpu_bogomips > 4000) && (host_cpu_free > 0.9) && \
         (host_memory_free > 5)\n";
      pool = all_machines;
      workloads = [];
      paper_random_servers = [ "lhost"; "phoebe" ];
      paper_random = 100.16;
      paper_smart = 63.00;
    };
    {
      title = "Table 5.4: 4 vs 4 under zero workload";
      n = 1500;
      blk = 200;
      wanted = 4;
      requirement =
        "((host_cpu_bogomips > 4000) || (host_cpu_bogomips < 2000)) && \
         (host_cpu_free > 0.9) && (host_memory_free > 5)\n";
      pool = all_machines;
      workloads = [];
      paper_random_servers = [ "phoebe"; "pandora-x"; "calypso"; "telesto" ];
      paper_random = 62.61;
      paper_smart = 49.95;
    };
    {
      title = "Table 5.5: 6 vs 6 with blacklist";
      n = 1500;
      blk = 200;
      wanted = 6;
      requirement =
        "(host_cpu_free > 0.9) && (host_memory_free > 5)\n\
         user_denied_host1 = telesto\n\
         user_denied_host2 = mimas\n\
         user_denied_host3 = phoebe\n\
         user_denied_host4 = calypso\n\
         user_denied_host5 = 192.168.4.3\n"
        (* titan-x written as its IP: bare '-' host names are not valid
           identifiers, exactly as in the original flex rules *);
      pool = all_machines;
      workloads = [];
      paper_random_servers =
        [ "phoebe"; "pandora-x"; "calypso"; "telesto"; "helene"; "lhost" ];
      paper_random = 46.90;
      paper_smart = 43.02;
    };
    {
      title = "Table 5.6: 4 vs 4 with workload (SuperPI on 3 of 7)";
      n = 1500;
      blk = 200;
      wanted = 4;
      requirement =
        "(host_cpu_free > 0.9) && (host_memory_free > 5) && \
         (host_system_load1 < 0.5)\n";
      pool = p4_pool;
      workloads = [ "helene"; "telesto"; "mimas" ];
      paper_random_servers = [ "mimas"; "helene"; "calypso"; "telesto" ];
      paper_random = 90.93;
      paper_smart = 66.72;
    };
  ]

let run_setup (s : setup) =
  let smart_servers =
    smart_select ~pool:s.pool ~workloads:s.workloads ~wanted:s.wanted
      ~requirement:s.requirement
  in
  let random_time =
    timed_run ~servers:s.paper_random_servers ~workloads:s.workloads ~n:s.n
      ~blk:s.blk
  in
  let smart_time =
    timed_run ~servers:smart_servers ~workloads:s.workloads ~n:s.n ~blk:s.blk
  in
  {
    title = s.title;
    matrix = Printf.sprintf "%dx%d, blk=%d" s.n s.n s.blk;
    requirement = s.requirement;
    workloads = s.workloads;
    random_servers = s.paper_random_servers;
    smart_servers;
    random_time;
    smart_time;
    paper_random = s.paper_random;
    paper_smart = s.paper_smart;
  }

let run_all () = List.map run_setup setups

let print_comparison (c : comparison) =
  let tab =
    Smart_util.Tabular.create ~title:c.title
      ~header:[ "Item"; "Random"; "Smart Library" ]
  in
  Smart_util.Tabular.add_row tab [ "Matrix Size"; c.matrix; c.matrix ];
  Smart_util.Tabular.add_row tab
    [
      "Server List";
      String.concat "," c.random_servers;
      String.concat "," c.smart_servers;
    ];
  if c.workloads <> [] then
    Smart_util.Tabular.add_row tab
      [ "SuperPI on"; String.concat "," c.workloads; "" ];
  Smart_util.Tabular.add_row tab
    [
      "Time used (sec)";
      Fmt.str "%.2f" c.random_time;
      Fmt.str "%.2f" c.smart_time;
    ];
  Smart_util.Tabular.add_row tab
    [
      "Paper (sec)";
      Fmt.str "%.2f" c.paper_random;
      Fmt.str "%.2f" c.paper_smart;
    ];
  Smart_util.Tabular.add_row tab
    [
      "Improvement";
      "";
      Fmt.str "%.1f%% (paper %.1f%%)" (improvement c)
        (100.0 *. (1.0 -. (c.paper_smart /. c.paper_random)));
    ];
  Smart_util.Tabular.print tab
