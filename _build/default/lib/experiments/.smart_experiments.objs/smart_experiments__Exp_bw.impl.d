lib/experiments/exp_bw.ml: Fmt List Option Printf Smart_host Smart_measure Smart_util
