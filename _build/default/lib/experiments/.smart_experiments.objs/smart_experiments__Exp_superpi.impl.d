lib/experiments/exp_superpi.ml: Fmt Smart_host Smart_util
