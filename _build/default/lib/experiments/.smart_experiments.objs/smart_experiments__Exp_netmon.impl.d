lib/experiments/exp_netmon.ml: Fmt List Smart_core Smart_host Smart_measure Smart_net Smart_proto Smart_util
