lib/experiments/exp_massd.ml: Fmt List Smart_apps Smart_core Smart_host Smart_util String
