lib/experiments/exp_ablation.ml: Array Fmt List Smart_core Smart_host Smart_measure Smart_proto Smart_sim Smart_util
