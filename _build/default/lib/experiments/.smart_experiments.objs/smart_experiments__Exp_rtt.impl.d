lib/experiments/exp_rtt.ml: Array Fmt List Printf Smart_host Smart_measure Smart_util
