lib/experiments/exp_resources.ml: Fmt List Printf Smart_core Smart_host Smart_proto Smart_util
