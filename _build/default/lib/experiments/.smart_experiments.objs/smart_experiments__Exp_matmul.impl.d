lib/experiments/exp_matmul.ml: Fmt List Printf Smart_apps Smart_core Smart_host Smart_sim Smart_util String
