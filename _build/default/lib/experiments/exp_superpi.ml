(* Table 4.1: /proc/meminfo before and after starting SuperPI on a 256 MB
   machine — the memory-pressure behaviour (free memory collapses,
   buffers are reclaimed, page cache grows with the scratch traffic) the
   probe must be able to observe. *)

type report = {
  before : Smart_host.Procfs.meminfo;
  after : Smart_host.Procfs.meminfo;
}

let run () =
  let c = Smart_host.Cluster.create ~seed:3 () in
  let spec =
    { (Smart_host.Testbed.spec_of_name "helene") with
      Smart_host.Machine.ram_bytes = 256 * 1024 * 1024 }
  in
  let node = Smart_host.Cluster.add_machine c spec in
  let m = Smart_host.Cluster.machine c node in
  (* some settling time with light background disk traffic, as a desktop
     that has been up for a while *)
  let warm =
    Smart_host.Machine.add_workload m ~now:0.0
      (Smart_host.Machine.disk_hog ~reqps:30.0)
  in
  Smart_host.Machine.sync m ~now:120.0;
  ignore (Smart_host.Machine.remove_workload m ~now:120.0 warm);
  let before_text = Smart_host.Procfs.render_meminfo m in
  ignore
    (Smart_host.Machine.add_workload m ~now:121.0 Smart_host.Machine.superpi);
  (* SuperPI computes with heavy scratch-file IO for a while *)
  Smart_host.Machine.sync m ~now:400.0;
  let after_text = Smart_host.Procfs.render_meminfo m in
  match
    ( Smart_host.Procfs.parse_meminfo before_text,
      Smart_host.Procfs.parse_meminfo after_text )
  with
  | Ok before, Ok after -> { before; after }
  | Error e, _ | _, Error e -> failwith ("exp_superpi: " ^ e)

let print (r : report) =
  let tab =
    Smart_util.Tabular.create
      ~title:"Table 4.1: memory usage before and after SuperPI"
      ~header:[ ""; "total"; "used"; "free"; "shared"; "buffers"; "cached" ]
  in
  let row label (m : Smart_host.Procfs.meminfo) =
    Smart_util.Tabular.add_row tab
      [
        label;
        string_of_int m.Smart_host.Procfs.total;
        string_of_int m.Smart_host.Procfs.used;
        string_of_int m.Smart_host.Procfs.free;
        string_of_int m.Smart_host.Procfs.shared_mem;
        string_of_int m.Smart_host.Procfs.buffers;
        string_of_int m.Smart_host.Procfs.cached;
      ]
  in
  row "Mem1 (before)" r.before;
  row "Mem2 (after)" r.after;
  Smart_util.Tabular.print tab;
  Fmt.pr
    "  paper: used 121->258 MB, free 141->3.9 MB, buffers shrink, cache \
     grows@.@."
