(* Figures 3.3-3.6 and Table 3.2: RTT-vs-payload sweeps exposing the MTU
   knee, on the sagit->suna path at three MTU settings and on the six
   wide-area sample paths. *)

type sweep_report = {
  label : string;
  mtu : int;
  samples : Smart_measure.Rtt_probe.sample list;
  knee : Smart_measure.Rtt_probe.knee_analysis option;
  ping : float option;
  paper_ping : float option;
  lost : int;
}

(* Fig 3.3/3.4/3.5: sagit -> suna with the interface MTU at 1500, 1000
   and 500 bytes.  The knee should track the MTU. *)
let mtu_sweeps ?(mtus = [ 1500; 1000; 500 ]) ?(max_size = 6000) ?(step = 10) ()
    =
  List.map
    (fun mtu ->
      let fixture = Smart_host.Testbed.paths ~sagit_mtu:mtu () in
      let stack = Smart_host.Cluster.stack fixture.Smart_host.Testbed.cluster in
      let src = fixture.Smart_host.Testbed.sagit in
      let dst = fixture.Smart_host.Testbed.suna in
      let sweep =
        Smart_measure.Rtt_probe.sweep ~min_size:1 ~max_size ~step stack ~src
          ~dst ()
      in
      let knee =
        try Some (Smart_measure.Rtt_probe.analyze sweep) with
        | Invalid_argument _ -> None
      in
      {
        label = Printf.sprintf "sagit->suna MTU=%d" mtu;
        mtu;
        samples = sweep.Smart_measure.Rtt_probe.samples;
        knee;
        ping = None;
        paper_ping = None;
        lost = sweep.Smart_measure.Rtt_probe.lost;
      })
    mtus

(* Fig 3.6 / Table 3.2: the six sample network paths. *)
let sample_paths ?(max_size = 6000) ?(step = 50) () =
  let fixture = Smart_host.Testbed.paths () in
  let stack = Smart_host.Cluster.stack fixture.Smart_host.Testbed.cluster in
  List.map
    (fun (p : Smart_host.Testbed.rtt_path) ->
      let src = p.Smart_host.Testbed.src and dst = p.Smart_host.Testbed.dst in
      let ping = Smart_measure.Rtt_probe.ping ~count:5 stack ~src ~dst () in
      let sweep =
        Smart_measure.Rtt_probe.sweep ~min_size:1 ~max_size ~step stack ~src
          ~dst ()
      in
      let knee =
        try Some (Smart_measure.Rtt_probe.analyze sweep) with
        | Invalid_argument _ -> None
      in
      {
        label =
          Printf.sprintf "%s: %s" p.Smart_host.Testbed.label
            p.Smart_host.Testbed.description;
        mtu = 1500;
        samples = sweep.Smart_measure.Rtt_probe.samples;
        knee;
        ping;
        paper_ping = Some p.Smart_host.Testbed.ping_rtt;
        lost = sweep.Smart_measure.Rtt_probe.lost;
      })
    fixture.Smart_host.Testbed.paths

(* Compact ASCII rendering of one sweep: RTT at decile payloads, plus the
   detected knee. *)
let print_sweep (r : sweep_report) =
  let tab =
    Smart_util.Tabular.create ~title:r.label
      ~header:[ "payload (B)"; "RTT" ]
  in
  let samples = Array.of_list r.samples in
  let n = Array.length samples in
  if n > 0 then begin
    let idx = [ 0; n / 8; n / 4; 3 * n / 8; n / 2; 5 * n / 8; 3 * n / 4; 7 * n / 8; n - 1 ] in
    List.iter
      (fun i ->
        let s = samples.(i) in
        Smart_util.Tabular.add_row tab
          [
            string_of_int s.Smart_measure.Rtt_probe.payload;
            Fmt.str "%a" Smart_util.Units.pp_time s.Smart_measure.Rtt_probe.rtt;
          ])
      (List.sort_uniq compare idx)
  end;
  Smart_util.Tabular.print tab;
  (match r.knee with
  | Some k when k.Smart_measure.Rtt_probe.significant ->
    Fmt.pr
      "  knee ~ %.0f B (MTU %d); slope-bandwidth below %.1f Mbps, above %.1f \
       Mbps@."
      k.Smart_measure.Rtt_probe.knee_bytes r.mtu
      (Smart_util.Units.bytes_per_sec_to_mbps
         k.Smart_measure.Rtt_probe.bw_below)
      (Smart_util.Units.bytes_per_sec_to_mbps
         k.Smart_measure.Rtt_probe.bw_above)
  | Some _ ->
    Fmt.pr
      "  no significant knee (virtual interface or jitter-shadowed, \
       observations 1/4 of §3.3.2)@."
  | None -> Fmt.pr "  knee: not detectable@.");
  (match (r.ping, r.paper_ping) with
  | Some p, Some paper ->
    Fmt.pr "  ping: measured %a, thesis %a@." Smart_util.Units.pp_time p
      Smart_util.Units.pp_time paper
  | _ -> ());
  Fmt.pr "@."
