(* Table 5.2: system resources used by each component with 11 probes
   reporting every 2 seconds.

   Network bandwidth is *measured* (payload bytes through the simulated
   stack over a 60-virtual-second window).  CPU and memory cannot be
   measured inside a simulation, so they are modelled: CPU as a
   per-message processing cost, memory as a base footprint plus the live
   record set.  The model constants are calibrated to the thesis's
   Pentium-4 monitor host and documented here rather than hidden. *)

type row = {
  component : string;
  cpu_pct : float;
  memory_bytes : int;
  bandwidth_kBps : float;
  paper : string;  (* the thesis's figures for the same cell *)
}

type report = { rows : row list; duration : float; probes : int }

(* Modelled per-message CPU costs (fraction of one 2.4 GHz core). *)
let probe_cpu_per_msg = 0.8e-3      (* /proc scan + format *)
let sysmon_cpu_per_msg = 1.2e-3     (* parse + db update *)
let wizard_cpu_per_msg = 8.0e-3     (* parse requirement + scan db *)
let stream_cpu_per_msg = 0.4e-3

let base_footprint = 8 * 1024

let run ?(duration = 60.0) () =
  let c = Smart_host.Testbed.icpp2005 () in
  let servers = Smart_host.Testbed.machine_names in
  let d =
    Smart_core.Simdriver.deploy c ~monitor:"dalmatian" ~wizard_host:"dalmatian"
      ~servers
  in
  Smart_core.Simdriver.settle ~duration:2.0 d;
  let t0 = Smart_host.Cluster.now c in
  let netmon_record = Smart_core.Simdriver.refresh_netmon ~trials:2 d in
  (* a few client requests so the wizard row is non-trivial *)
  for _ = 1 to 5 do
    ignore
      (Smart_core.Simdriver.request d ~client:"sagit" ~wanted:4
         ~requirement:"host_cpu_free > 0.1\n")
  done;
  Smart_core.Simdriver.settle ~duration:(duration -. (Smart_host.Cluster.now c -. t0)) d;
  let elapsed = Smart_host.Cluster.now c -. t0 in
  let probe_msgs, probe_bytes = Smart_core.Simdriver.traffic_stats d "probe" in
  let tx_msgs, tx_bytes = Smart_core.Simdriver.traffic_stats d "transmitter" in
  let wiz_msgs, wiz_bytes = Smart_core.Simdriver.traffic_stats d "wizard" in
  let n_probes = List.length servers in
  let kBps bytes = float_of_int bytes /. 1024.0 /. elapsed in
  let rate msgs = float_of_int msgs /. elapsed in
  let sys_db_bytes =
    Smart_core.Status_db.sys_count (Smart_core.Simdriver.db_wizard d)
    * Smart_proto.Records.sys_record_size
  in
  (* netmon probing bytes per round: two stream sizes x trials + pings *)
  let netmon_bytes_per_round =
    List.length netmon_record.Smart_proto.Records.entries
    * (2 * ((1600 + 2900) + (3 * 56)))
  in
  let rows =
    [
      {
        component = "System Probe (each)";
        cpu_pct = 100.0 *. probe_cpu_per_msg *. rate probe_msgs /. float_of_int n_probes;
        memory_bytes = base_footprint;
        bandwidth_kBps = kBps probe_bytes /. float_of_int n_probes;
        paper = "<0.1% / 8 KB / 0.5~0.6 KBps";
      };
      {
        component = "System Monitor";
        cpu_pct = 100.0 *. sysmon_cpu_per_msg *. rate probe_msgs;
        memory_bytes = base_footprint + sys_db_bytes;
        bandwidth_kBps = kBps probe_bytes;  (* receives all probe traffic *)
        paper = "0.7% / 8 KB / 5.7 KBps";
      };
      {
        component = "Network Monitor";
        cpu_pct = 0.05;
        memory_bytes = base_footprint;
        bandwidth_kBps = float_of_int netmon_bytes_per_round /. 1024.0 /. elapsed;
        paper = "<0.1% / 8 KB / 5.6 KBps";
      };
      {
        component = "Security Monitor";
        cpu_pct = 0.01;
        memory_bytes = base_footprint;
        bandwidth_kBps = 0.0;
        paper = "<0.1% / 8 KB / (not used)";
      };
      {
        component = "Transmitter";
        cpu_pct = 100.0 *. stream_cpu_per_msg *. rate tx_msgs;
        memory_bytes = base_footprint;
        bandwidth_kBps = kBps tx_bytes;
        paper = "<0.1% / 8 KB / 1.2 KBps";
      };
      {
        component = "Receiver";
        cpu_pct = 100.0 *. stream_cpu_per_msg *. rate tx_msgs;
        memory_bytes = base_footprint + sys_db_bytes + (16 * 1024);
        bandwidth_kBps = kBps tx_bytes;
        paper = "<0.1% / 92 KB / 1.2 KBps";
      };
      {
        component = "Wizard";
        cpu_pct = 100.0 *. wizard_cpu_per_msg *. rate wiz_msgs;
        memory_bytes = base_footprint + sys_db_bytes + (24 * 1024);
        bandwidth_kBps = kBps wiz_bytes;
        paper = "0.1% / 96 KB / <1 KBps";
      };
    ]
  in
  { rows; duration = elapsed; probes = n_probes }

let print (r : report) =
  let tab =
    Smart_util.Tabular.create
      ~title:
        (Printf.sprintf
           "Table 5.2: system resources with %d probes (%.0f s window)"
           r.probes r.duration)
      ~header:[ "Program"; "CPU"; "Memory"; "Net bandwidth"; "Paper" ]
  in
  List.iter
    (fun row ->
      Smart_util.Tabular.add_row tab
        [
          row.component;
          Fmt.str "%.2f%%" row.cpu_pct;
          Fmt.str "%a" Smart_util.Units.pp_bytes row.memory_bytes;
          Fmt.str "%.2f KBps" row.bandwidth_kBps;
          row.paper;
        ])
    r.rows;
  Smart_util.Tabular.print tab
