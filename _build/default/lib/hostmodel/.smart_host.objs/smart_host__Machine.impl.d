lib/hostmodel/machine.ml: Float List
