lib/hostmodel/procfs.ml: Float List Machine Option Printf Result String
