lib/hostmodel/testbed.ml: Array Cluster List Machine Printf Smart_net Smart_util
