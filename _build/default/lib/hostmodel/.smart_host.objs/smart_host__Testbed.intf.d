lib/hostmodel/testbed.mli: Cluster Machine Smart_net
