lib/hostmodel/procfs.mli: Machine
