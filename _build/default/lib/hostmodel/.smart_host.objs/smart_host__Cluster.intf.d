lib/hostmodel/cluster.mli: Machine Smart_net Smart_sim Smart_util
