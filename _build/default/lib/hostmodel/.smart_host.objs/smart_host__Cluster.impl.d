lib/hostmodel/cluster.ml: Hashtbl List Machine Printf Smart_net Smart_sim Smart_util
