lib/hostmodel/machine.mli:
