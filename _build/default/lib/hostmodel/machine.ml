(* Simulated server: static hardware spec plus dynamic resource state.

   State advances lazily: [sync t ~now] integrates CPU jiffies, load
   averages, disk counters and memory reclamation from the last sync time
   to [now] under the currently running workloads.  Samplers (the server
   probe) call [sync] first, so the observable counters are exact at the
   sampling instant regardless of event granularity. *)

let user_hz = 100.0  (* jiffies per second, as on Linux *)

type spec = {
  name : string;
  ip : string;
  cpu_model : string;
  cpu_mhz : float;
  bogomips : float;
  ram_bytes : int;
  os : string;
  (* effective multiply-accumulate rate of the thesis's matrix program on
     this machine (ops/second); encodes the Fig 5.2 benchmark shape *)
  matmul_rate : float;
  disk_rate : float;  (* blocks/second the disk can serve *)
}

type workload = {
  wl_name : string;
  cpu_demand : float;     (* runnable processes worth of CPU, e.g. 1.0 *)
  mem_bytes : int;
  disk_read_ps : float;   (* read requests per second *)
  disk_write_ps : float;
}

type netdev = {
  mutable rbytes : float;
  mutable rpackets : float;
  mutable tbytes : float;
  mutable tpackets : float;
}

type t = {
  spec : spec;
  mutable last_sync : float;
  (* cumulative CPU jiffies, /proc/stat "cpu" line *)
  mutable jiffies_user : float;
  mutable jiffies_nice : float;
  mutable jiffies_system : float;
  mutable jiffies_idle : float;
  mutable load1 : float;
  mutable load5 : float;
  mutable load15 : float;
  (* memory pools, bytes *)
  mutable mem_os_used : int;   (* kernel + resident daemons *)
  mutable mem_buffers : int;
  mutable mem_cached : int;
  mutable workloads : (int * workload) list;
  mutable next_workload_id : int;
  (* cumulative disk counters, /proc/stat "disk_io" line *)
  mutable disk_rreq : float;
  mutable disk_wreq : float;
  mutable disk_rblocks : float;
  mutable disk_wblocks : float;
  eth : netdev;
  mutable failed : bool;
}

let create ?(now = 0.0) spec =
  {
    spec;
    last_sync = now;
    jiffies_user = 0.0;
    jiffies_nice = 0.0;
    jiffies_system = 0.0;
    jiffies_idle = 0.0;
    load1 = 0.0;
    load5 = 0.0;
    load15 = 0.0;
    mem_os_used = spec.ram_bytes / 8;
    mem_buffers = spec.ram_bytes / 14;
    mem_cached = spec.ram_bytes * 3 / 10;
    workloads = [];
    next_workload_id = 0;
    disk_rreq = 0.0;
    disk_wreq = 0.0;
    disk_rblocks = 0.0;
    disk_wblocks = 0.0;
    eth = { rbytes = 0.0; rpackets = 0.0; tbytes = 0.0; tpackets = 0.0 };
    failed = false;
  }

let spec t = t.spec

let cpu_demand t =
  List.fold_left (fun acc (_, w) -> acc +. w.cpu_demand) 0.0 t.workloads

(* Fraction of CPU time left idle under the current demand. *)
let cpu_free t = Float.max 0.0 (1.0 -. cpu_demand t)

let mem_workloads t =
  List.fold_left (fun acc (_, w) -> acc + w.mem_bytes) 0 t.workloads

let mem_used t =
  min t.spec.ram_bytes
    (t.mem_os_used + t.mem_buffers + t.mem_cached + mem_workloads t)

let mem_free t = t.spec.ram_bytes - mem_used t

(* CPU share a new job of demand 1 would receive: the scheduler splits the
   processor evenly among runnable processes. *)
let compute_share t = 1.0 /. (1.0 +. cpu_demand t)

let decay ~dt ~tau = Float.exp (-.dt /. tau)

let sync t ~now =
  let dt = now -. t.last_sync in
  if dt > 0.0 then begin
    let demand = cpu_demand t in
    let busy = Float.min 1.0 demand in
    t.jiffies_user <- t.jiffies_user +. (dt *. user_hz *. busy);
    t.jiffies_idle <- t.jiffies_idle +. (dt *. user_hz *. (1.0 -. busy));
    (* exponentially-weighted load averages toward the run-queue length *)
    let update load tau =
      let k = decay ~dt ~tau in
      (load *. k) +. (demand *. (1.0 -. k))
    in
    t.load1 <- update t.load1 60.0;
    t.load5 <- update t.load5 300.0;
    t.load15 <- update t.load15 900.0;
    (* disk activity of the running workloads *)
    let rps, wps =
      List.fold_left
        (fun (r, w) (_, wl) -> (r +. wl.disk_read_ps, w +. wl.disk_write_ps))
        (0.0, 0.0) t.workloads
    in
    let rreq = rps *. dt and wreq = wps *. dt in
    t.disk_rreq <- t.disk_rreq +. rreq;
    t.disk_wreq <- t.disk_wreq +. wreq;
    t.disk_rblocks <- t.disk_rblocks +. (rreq *. 8.0);
    t.disk_wblocks <- t.disk_wblocks +. (wreq *. 8.0);
    (* The page cache grows with disk traffic until free memory hits a
       small floor; under pressure it evicts buffer memory first — the
       Table 4.1 behaviour (free collapses, buffers shrink, cache grows). *)
    let min_free = 4 * 1024 * 1024 in
    let growth = int_of_float ((rreq +. wreq) *. 8.0 *. 512.0) in
    if growth > 0 then begin
      let room = max 0 (mem_free t - min_free) in
      let room =
        if growth > room then begin
          let take = min t.mem_buffers (growth - room) in
          t.mem_buffers <- t.mem_buffers - take;
          room + take
        end
        else room
      in
      t.mem_cached <- t.mem_cached + min growth room
    end;
    t.last_sync <- now
  end
  else t.last_sync <- Float.max t.last_sync now

(* Allocating workload memory evicts buffers, then page cache, mimicking
   the SuperPI footprint of Table 4.1. *)
let reclaim_for t bytes =
  let need = bytes - mem_free t in
  if need > 0 then begin
    let from_buffers = min need t.mem_buffers in
    t.mem_buffers <- t.mem_buffers - from_buffers;
    let need = need - from_buffers in
    if need > 0 then begin
      let from_cached = min need t.mem_cached in
      t.mem_cached <- t.mem_cached - from_cached
    end
  end

let add_workload t ~now wl =
  sync t ~now;
  reclaim_for t wl.mem_bytes;
  let id = t.next_workload_id in
  t.next_workload_id <- id + 1;
  t.workloads <- (id, wl) :: t.workloads;
  id

let remove_workload t ~now id =
  sync t ~now;
  let before = List.length t.workloads in
  t.workloads <- List.filter (fun (i, _) -> i <> id) t.workloads;
  List.length t.workloads < before

let set_failed t failed = t.failed <- failed

let failed t = t.failed

let count_rx t ~bytes =
  t.eth.rbytes <- t.eth.rbytes +. bytes;
  t.eth.rpackets <- t.eth.rpackets +. Float.max 1.0 (bytes /. 1448.0)

let count_tx t ~bytes =
  t.eth.tbytes <- t.eth.tbytes +. bytes;
  t.eth.tpackets <- t.eth.tpackets +. Float.max 1.0 (bytes /. 1448.0)

(* Canned workloads *)

(* The thesis's SuperPI run with parameter 25: ~150 MB footprint (100 MB
   resident plus scratch files that fill the page cache), CPU pinned,
   load above 1. *)
let superpi =
  {
    wl_name = "superpi";
    cpu_demand = 1.1;
    mem_bytes = 100 * 1024 * 1024;
    disk_read_ps = 200.0;
    disk_write_ps = 400.0;
  }

let cpu_hog ~demand =
  { wl_name = "cpu_hog"; cpu_demand = demand; mem_bytes = 4 * 1024 * 1024;
    disk_read_ps = 0.0; disk_write_ps = 0.0 }

let mem_hog ~bytes =
  { wl_name = "mem_hog"; cpu_demand = 0.1; mem_bytes = bytes;
    disk_read_ps = 0.0; disk_write_ps = 0.0 }

let disk_hog ~reqps =
  { wl_name = "disk_hog"; cpu_demand = 0.2; mem_bytes = 8 * 1024 * 1024;
    disk_read_ps = reqps /. 2.0; disk_write_ps = reqps /. 2.0 }
