(* A cluster bundles the simulation engine, topology, packet and flow
   planes, and the machines attached to topology nodes.  It wires the
   network byte-accounting hooks into the machines' interface counters so
   the probe's /proc/net/dev figures reflect actual traffic. *)

type t = {
  engine : Smart_sim.Engine.t;
  rng : Smart_util.Prng.t;
  topo : Smart_net.Topology.t;
  stack : Smart_net.Netstack.t;
  flows : Smart_net.Flow.t;
  machines : (int, Machine.t) Hashtbl.t;
  trace : Smart_sim.Trace.t option;
}

let machine_opt t id = Hashtbl.find_opt t.machines id

let machine t id =
  match machine_opt t id with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Cluster.machine: node %d has none" id)

let create ?(seed = 42) ?trace () =
  let engine = Smart_sim.Engine.create () in
  let rng = Smart_util.Prng.create ~seed in
  let topo = Smart_net.Topology.create () in
  let stack =
    Smart_net.Netstack.create ?trace ~engine ~topo
      ~rng:(Smart_util.Prng.split rng) ()
  in
  let flows = Smart_net.Flow.create ?trace ~engine ~topo () in
  let t =
    { engine; rng; topo; stack; flows; machines = Hashtbl.create 16; trace }
  in
  (* account packet-plane fragments on the endpoint machines *)
  Smart_net.Netstack.set_byte_hook stack
    (Some
       (fun ~src ~dst bytes ->
         (match machine_opt t src with
         | Some m -> Machine.count_tx m ~bytes:(float_of_int bytes)
         | None -> ());
         match machine_opt t dst with
         | Some m -> Machine.count_rx m ~bytes:(float_of_int bytes)
         | None -> ()));
  (* account flow-plane progress on the transfer endpoints *)
  Smart_net.Flow.set_progress_hook flows
    (Some
       (fun ~src ~dst bytes ->
         (match machine_opt t src with
         | Some m -> Machine.count_tx m ~bytes
         | None -> ());
         match machine_opt t dst with
         | Some m -> Machine.count_rx m ~bytes
         | None -> ()));
  t

let engine t = t.engine

let topology t = t.topo

let stack t = t.stack

let flows t = t.flows

let rng t = t.rng

let trace t = t.trace

let now t = Smart_sim.Engine.now t.engine

let add_switch ?nic t ~name ~ip =
  Smart_net.Topology.add_node ?nic t.topo ~name ~ip

let add_machine ?nic t (spec : Machine.spec) =
  let id =
    Smart_net.Topology.add_node ?nic t.topo ~name:spec.Machine.name
      ~ip:spec.Machine.ip
  in
  Hashtbl.replace t.machines id (Machine.create ~now:(now t) spec);
  id

let link t ~a ~b conf = Smart_net.Topology.add_link t.topo ~a ~b conf

let resolve t key = Smart_net.Topology.resolve t.topo key

let resolve_exn t key =
  match resolve t key with
  | Some id -> id
  | None -> invalid_arg ("Cluster.resolve_exn: unknown host " ^ key)

let machines t =
  Hashtbl.fold (fun id m acc -> (id, m) :: acc) t.machines []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Sync every machine's lazy state to the current virtual time. *)
let sync_machines t =
  let at = now t in
  Hashtbl.iter (fun _ m -> Machine.sync m ~now:at) t.machines

(* rshaper had a queue of roughly one frame, so the default bucket depth
   is a single MTU: probe streams then observe the shaped rate rather
   than bursting through. *)
let default_burst = 1500.0

(* Shape the egress channel of a machine (its link toward the first hop),
   like running rshaper on that host. *)
let shape_egress ?(burst = default_burst) t ~node ~rate_bytes_per_sec =
  let shaped = ref false in
  Smart_net.Topology.iter_channels t.topo (fun c ->
      if c.Smart_net.Link.src = node then begin
        Smart_net.Link.set_shaper c
          (match rate_bytes_per_sec with
          | None -> None
          | Some rate -> Some (Smart_net.Shaper.create ~burst ~rate ()));
        shaped := true
      end);
  !shaped

(* Symmetric shaping of both directions of a machine's access link. *)
let shape_access ?(burst = default_burst) t ~node ~rate_bytes_per_sec =
  let shaped = ref false in
  Smart_net.Topology.iter_channels t.topo (fun c ->
      if c.Smart_net.Link.src = node || c.Smart_net.Link.dst = node then begin
        Smart_net.Link.set_shaper c
          (match rate_bytes_per_sec with
          | None -> None
          | Some rate -> Some (Smart_net.Shaper.create ~burst ~rate ()));
        shaped := true
      end);
  !shaped
