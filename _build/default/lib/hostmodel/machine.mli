(** Simulated server machine: hardware spec plus lazily-integrated dynamic
    resource state (CPU jiffies, load averages, memory pools, disk and
    network counters). *)

(** Jiffies per second of virtual CPU time (Linux USER_HZ). *)
val user_hz : float

type spec = {
  name : string;
  ip : string;
  cpu_model : string;
  cpu_mhz : float;
  bogomips : float;
  ram_bytes : int;
  os : string;
  matmul_rate : float;
      (** multiply-accumulate ops/second of the thesis's matrix program on
          this machine; encodes the Fig 5.2 per-machine benchmark *)
  disk_rate : float;  (** disk blocks/second *)
}

type workload = {
  wl_name : string;
  cpu_demand : float;  (** runnable processes worth of CPU *)
  mem_bytes : int;
  disk_read_ps : float;
  disk_write_ps : float;
}

type netdev = {
  mutable rbytes : float;
  mutable rpackets : float;
  mutable tbytes : float;
  mutable tpackets : float;
}

type t = {
  spec : spec;
  mutable last_sync : float;
  mutable jiffies_user : float;
  mutable jiffies_nice : float;
  mutable jiffies_system : float;
  mutable jiffies_idle : float;
  mutable load1 : float;
  mutable load5 : float;
  mutable load15 : float;
  mutable mem_os_used : int;
  mutable mem_buffers : int;
  mutable mem_cached : int;
  mutable workloads : (int * workload) list;
  mutable next_workload_id : int;
  mutable disk_rreq : float;
  mutable disk_wreq : float;
  mutable disk_rblocks : float;
  mutable disk_wblocks : float;
  eth : netdev;
  mutable failed : bool;
}

val create : ?now:float -> spec -> t

val spec : t -> spec

(** Sum of workload CPU demands (run-queue length). *)
val cpu_demand : t -> float

(** Idle CPU fraction in [\[0, 1\]]. *)
val cpu_free : t -> float

val mem_used : t -> int

val mem_free : t -> int

(** CPU share a new demand-1 job would get: [1 / (1 + current demand)]. *)
val compute_share : t -> float

(** Integrate the dynamic state from the last sync time to [now]. *)
val sync : t -> now:float -> unit

(** Start a workload (syncs first, reclaims buffer/cache memory if free
    memory is short).  Returns a handle for [remove_workload]. *)
val add_workload : t -> now:float -> workload -> int

(** Stop a workload; [false] if the handle is unknown. *)
val remove_workload : t -> now:float -> int -> bool

(** Mark a machine dead: its probe stops reporting. *)
val set_failed : t -> bool -> unit

val failed : t -> bool

(** Account received / transmitted network bytes on eth0. *)
val count_rx : t -> bytes:float -> unit

val count_tx : t -> bytes:float -> unit

(** The thesis's SuperPI(25): ~150 MB resident, CPU pinned, load > 1. *)
val superpi : workload

val cpu_hog : demand:float -> workload

val mem_hog : bytes:int -> workload

val disk_hog : reqps:float -> workload
