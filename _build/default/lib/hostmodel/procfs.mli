(** Synthesis and parsing of the five /proc files the server probe reads
    (Table 3.1): [/proc/loadavg], [/proc/stat] (CPU + disk_io),
    [/proc/meminfo] and [/proc/net/dev].

    Rendering follows the Linux 2.4 formats of the thesis; the parsers
    also accept modern formats so the same probe runs on live hosts. *)

type loadavg = { l1 : float; l5 : float; l15 : float }

type cpu_jiffies = { user : float; nice : float; system : float; idle : float }

type disk_io = {
  rreq : float;
  rblocks : float;
  wreq : float;
  wblocks : float;
}

val zero_disk_io : disk_io

(** Total requests, the thesis's [allreq]. *)
val allreq : disk_io -> float

type meminfo = {
  total : int;
  used : int;
  free : int;
  shared_mem : int;
  buffers : int;
  cached : int;
}

type netdev_stat = {
  iface : string;
  rbytes : float;
  rpackets : float;
  tbytes : float;
  tpackets : float;
}

val render_loadavg : Machine.t -> string
val render_stat : Machine.t -> string
val render_meminfo : Machine.t -> string
val render_net_dev : Machine.t -> string

val parse_loadavg : string -> (loadavg, string) result

(** CPU jiffies plus the 2.4 [disk_io] line (zeroes when absent). *)
val parse_stat : string -> (cpu_jiffies * disk_io, string) result

val parse_meminfo : string -> (meminfo, string) result

val parse_net_dev : string -> (netdev_stat list, string) result

(** One probe sampling worth of /proc text. *)
type snapshot = {
  loadavg_text : string;
  stat_text : string;
  meminfo_text : string;
  netdev_text : string;
}

(** Sync the machine to [now] and render its snapshot. *)
val snapshot_of_machine : Machine.t -> now:float -> snapshot
