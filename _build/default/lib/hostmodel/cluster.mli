(** A simulated deployment: engine + topology + packet/flow planes +
    machines, with network byte accounting wired into machine NIC
    counters. *)

type t

(** [create ()] builds an empty deployment; attach a [trace] to record
    packet/flow events for debugging. *)
val create : ?seed:int -> ?trace:Smart_sim.Trace.t -> unit -> t

val engine : t -> Smart_sim.Engine.t
val topology : t -> Smart_net.Topology.t
val stack : t -> Smart_net.Netstack.t
val flows : t -> Smart_net.Flow.t
val rng : t -> Smart_util.Prng.t

(** The attached trace, if any. *)
val trace : t -> Smart_sim.Trace.t option

(** Current virtual time. *)
val now : t -> float

(** Add a switch/router node carrying no machine. *)
val add_switch : ?nic:Smart_net.Topology.nic -> t -> name:string -> ip:string -> int

(** Add a server machine; node name/IP come from the spec. *)
val add_machine : ?nic:Smart_net.Topology.nic -> t -> Machine.spec -> int

(** Bidirectional link. *)
val link : t -> a:int -> b:int -> Smart_net.Link.conf -> Smart_net.Link.t * Smart_net.Link.t

(** Hostname or IP to node id. *)
val resolve : t -> string -> int option

val resolve_exn : t -> string -> int

val machine_opt : t -> int -> Machine.t option

(** Machine at a node; raises [Invalid_argument] for switch nodes. *)
val machine : t -> int -> Machine.t

(** All (node id, machine) pairs, sorted by node id. *)
val machines : t -> (int * Machine.t) list

(** Sync all machines' lazy dynamic state to the current time. *)
val sync_machines : t -> unit

(** rshaper equivalent on the machine's outgoing access channel(s);
    [None] removes the shaper.  Returns [true] if a channel was found.
    The default [burst] is one MTU so probes measure the shaped rate. *)
val shape_egress :
  ?burst:float -> t -> node:int -> rate_bytes_per_sec:float option -> bool

(** Shape both directions of every channel touching [node]. *)
val shape_access :
  ?burst:float -> t -> node:int -> rate_bytes_per_sec:float option -> bool
