(** Discrete-event simulation engine with a virtual clock.

    All network and host components of the simulated deployment are driven
    from one engine; time never flows backwards, and simultaneous events
    execute in scheduling order. *)

type t

type handle

(** Raised when scheduling into the past or running to an earlier time. *)
exception Time_reversal of { now : float; requested : float }

(** Fresh engine at virtual time 0. *)
val create : unit -> t

(** Current virtual time in seconds. *)
val now : t -> float

(** Number of events executed so far (skips cancelled ones). *)
val executed_events : t -> int

(** Number of queued (possibly cancelled) events. *)
val pending_events : t -> int

(** Schedule a thunk at an absolute virtual time. *)
val schedule_at : t -> time:float -> (unit -> unit) -> handle

(** Schedule a thunk after a non-negative delay from now. *)
val schedule_after : t -> delay:float -> (unit -> unit) -> handle

(** Lazily cancel a scheduled event. *)
val cancel : handle -> unit

val is_cancelled : handle -> bool

(** Execute all events up to and including [until], then set the clock to
    [until]. *)
val run : t -> until:float -> unit

(** Execute every queued event regardless of time. *)
val run_until_idle : t -> unit

type periodic

(** [every t ~period ~start f] fires [f now] at [start], then every
    [period] (plus optional uniform jitter drawn from [rng]) until
    [stop_periodic]. *)
val every :
  ?jitter:float ->
  ?rng:Smart_util.Prng.t ->
  t ->
  period:float ->
  start:float ->
  (float -> unit) ->
  periodic

val stop_periodic : periodic -> unit
