(* Bounded event trace for the simulator.

   A cheap ring buffer of (time, category, message) entries that the
   network stack and flow plane write into when tracing is enabled;
   experiments and failing tests dump it to see exactly what the
   simulated deployment did.  Disabled tracing costs one branch. *)

type entry = { time : float; category : string; message : string }

type t = {
  capacity : int;
  ring : entry option array;
  mutable next : int;    (* next write position *)
  mutable count : int;   (* total entries ever recorded *)
  mutable enabled : bool;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; next = 0; count = 0;
    enabled = true }

let set_enabled t enabled = t.enabled <- enabled

let enabled t = t.enabled

let record t ~now ~category message =
  if t.enabled then begin
    t.ring.(t.next) <- Some { time = now; category; message };
    t.next <- (t.next + 1) mod t.capacity;
    t.count <- t.count + 1
  end

(* Printf-style recording that formats only when tracing is on. *)
let recordf t ~now ~category fmt =
  if t.enabled then
    Fmt.kstr (fun message -> record t ~now ~category message) fmt
  else Fmt.kstr (fun _ -> ()) fmt

let total_recorded t = t.count

let dropped t = max 0 (t.count - t.capacity)

(* Oldest-first snapshot of the retained entries. *)
let entries t =
  let stored = min t.count t.capacity in
  let start = (t.next - stored + t.capacity) mod t.capacity in
  List.init stored (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let filter t ~category =
  List.filter (fun e -> String.equal e.category category) (entries t)

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.count <- 0

let pp_entry ppf e =
  Fmt.pf ppf "[%10.6f] %-10s %s" e.time e.category e.message

let dump ?category t ppf =
  let es =
    match category with None -> entries t | Some c -> filter t ~category:c
  in
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) es;
  if dropped t > 0 then
    Fmt.pf ppf "(… %d earlier entries dropped)@." (dropped t)
