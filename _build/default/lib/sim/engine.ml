(* Discrete-event simulation engine.

   Events are thunks ordered by virtual time; ties run in scheduling order
   (the heap breaks ties FIFO).  Cancellation is lazy: a cancelled event
   stays in the heap but its thunk is skipped when popped. *)

type handle = { id : int; mutable cancelled : bool }

type event = { handle : handle; thunk : unit -> unit }

type t = {
  queue : event Smart_util.Heap.t;
  mutable now : float;
  mutable next_id : int;
  mutable executed : int;
}

exception Time_reversal of { now : float; requested : float }

let create () =
  { queue = Smart_util.Heap.create (); now = 0.0; next_id = 0; executed = 0 }

let now t = t.now

let executed_events t = t.executed

let pending_events t = Smart_util.Heap.length t.queue

let schedule_at t ~time thunk =
  if time < t.now then raise (Time_reversal { now = t.now; requested = time });
  let handle = { id = t.next_id; cancelled = false } in
  t.next_id <- t.next_id + 1;
  Smart_util.Heap.push t.queue ~key:time { handle; thunk };
  handle

let schedule_after t ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t ~time:(t.now +. delay) thunk

let cancel handle = handle.cancelled <- true

let is_cancelled handle = handle.cancelled

(* Run a single event if one is due not later than [limit].  Returns
   [false] when the queue holds nothing at or before [limit]. *)
let step_until t ~limit =
  match Smart_util.Heap.peek t.queue with
  | None -> false
  | Some (time, _) when time > limit -> false
  | Some _ ->
    (match Smart_util.Heap.pop t.queue with
    | None -> false
    | Some (time, ev) ->
      t.now <- time;
      if not ev.handle.cancelled then begin
        t.executed <- t.executed + 1;
        ev.thunk ()
      end;
      true)

let run t ~until =
  if until < t.now then raise (Time_reversal { now = t.now; requested = until });
  while step_until t ~limit:until do () done;
  t.now <- until

let run_until_idle t =
  while step_until t ~limit:Float.infinity do () done

(* Periodic process: re-arms itself after every firing until stopped.  The
   callback receives the current virtual time.  [jitter] (if any) draws a
   uniform offset in [0, jitter) added to each period, modelling scheduling
   noise of the real daemons. *)
type periodic = { mutable stopped : bool; mutable current : handle option }

let every ?jitter ?rng t ~period ~start f =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  let proc = { stopped = false; current = None } in
  let noise () =
    match (jitter, rng) with
    | Some j, Some r when j > 0.0 -> Smart_util.Prng.float r ~bound:j
    | _ -> 0.0
  in
  let rec arm at =
    if not proc.stopped then
      proc.current <-
        Some
          (schedule_at t ~time:at (fun () ->
               if not proc.stopped then begin
                 f t.now;
                 arm (t.now +. period +. noise ())
               end))
  in
  arm (Float.max t.now start);
  proc

let stop_periodic proc =
  proc.stopped <- true;
  match proc.current with
  | None -> ()
  | Some h -> cancel h
