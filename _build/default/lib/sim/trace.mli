(** Bounded event trace (ring buffer) for simulator observability.

    The network stack and flow plane write packet/flow events here when
    a trace is attached; tests and experiments dump it to see what the
    simulated deployment actually did. *)

type entry = { time : float; category : string; message : string }

type t

(** [create ()] keeps the most recent [capacity] entries (default 4096). *)
val create : ?capacity:int -> unit -> t

val set_enabled : t -> bool -> unit

val enabled : t -> bool

val record : t -> now:float -> category:string -> string -> unit

(** Printf-style; the message is formatted only if tracing is enabled. *)
val recordf :
  t -> now:float -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** Entries ever recorded (including those the ring has dropped). *)
val total_recorded : t -> int

(** How many early entries the ring has overwritten. *)
val dropped : t -> int

(** Retained entries, oldest first. *)
val entries : t -> entry list

val filter : t -> category:string -> entry list

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit

(** Print all (or one category's) retained entries. *)
val dump : ?category:string -> t -> Format.formatter -> unit
