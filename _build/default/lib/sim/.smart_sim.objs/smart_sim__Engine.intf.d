lib/sim/engine.mli: Smart_util
