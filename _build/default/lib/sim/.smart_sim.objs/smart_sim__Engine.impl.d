lib/sim/engine.ml: Float Smart_util
