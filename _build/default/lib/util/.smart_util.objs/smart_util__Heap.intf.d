lib/util/heap.mli:
