lib/util/tabular.mli:
