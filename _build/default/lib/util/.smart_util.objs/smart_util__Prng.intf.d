lib/util/prng.mli:
