(** Aligned plain-text tables for the experiment reports. *)

type t

(** [create ~title ~header] starts an empty table. *)
val create : title:string -> header:string list -> t

(** Append a row (cells beyond the header width are dropped). *)
val add_row : t -> string list -> unit

(** Render to a string, rows in insertion order. *)
val render : t -> string

(** [render] followed by printing to stdout with a trailing blank line. *)
val print : t -> unit
