(** Binary min-heap keyed by [float] with FIFO tie-breaking.

    Ties on the key pop in insertion order, which the simulator relies on
    for deterministic ordering of simultaneous events. *)

type 'a t

(** Fresh empty heap. *)
val create : unit -> 'a t

(** Number of stored elements. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push t ~key v] inserts [v] with priority [key] (smaller pops first). *)
val push : 'a t -> key:float -> 'a -> unit

(** Smallest element without removing it. *)
val peek : 'a t -> (float * 'a) option

(** Remove and return the smallest element. *)
val pop : 'a t -> (float * 'a) option

(** Drop all elements. *)
val clear : 'a t -> unit

(** Non-destructive sorted drain, mainly for tests. *)
val to_sorted_list : 'a t -> (float * 'a) list
