(** Unit conversions.  Internal conventions: seconds, bytes, bytes/second. *)

val bits_per_byte : float

(** Megabits/second to bytes/second. *)
val mbps_to_bytes_per_sec : float -> float

val bytes_per_sec_to_mbps : float -> float

val kbps_to_bytes_per_sec : float -> float

(** Bytes/second to kilobytes/second (1024-based, as the thesis reports). *)
val bytes_per_sec_to_kBps : float -> float

val kB : int
val mB : int

val ms_to_s : float -> float
val s_to_ms : float -> float
val us_to_s : float -> float
val s_to_us : float -> float

val pp_rate : Format.formatter -> float -> unit
val pp_time : Format.formatter -> float -> unit
val pp_bytes : Format.formatter -> int -> unit
