(* Unit conventions used throughout the project:
     time        — seconds (float)
     data size   — bytes (int)
     rates       — bytes per second (float) internally
   The paper mixes Mbps, KB/s and KBytes; these helpers keep conversions
   in one place. *)

let bits_per_byte = 8.0

let mbps_to_bytes_per_sec mbps = mbps *. 1e6 /. bits_per_byte

let bytes_per_sec_to_mbps bps = bps *. bits_per_byte /. 1e6

let kbps_to_bytes_per_sec kbps = kbps *. 1e3 /. bits_per_byte

(* The thesis reports application throughput in KB/s (kilobytes). *)
let bytes_per_sec_to_kBps bps = bps /. 1024.0

let kB = 1024

let mB = 1024 * 1024

let ms_to_s ms = ms /. 1e3

let s_to_ms s = s *. 1e3

let us_to_s us = us /. 1e6

let s_to_us s = s *. 1e6

let pp_rate ppf bps =
  if bps >= 1e6 /. bits_per_byte then Fmt.pf ppf "%.2f Mbps" (bytes_per_sec_to_mbps bps)
  else Fmt.pf ppf "%.1f KB/s" (bytes_per_sec_to_kBps bps)

let pp_time ppf s =
  if s < 1e-3 then Fmt.pf ppf "%.1f us" (s_to_us s)
  else if s < 1.0 then Fmt.pf ppf "%.3f ms" (s_to_ms s)
  else Fmt.pf ppf "%.2f s" s

let pp_bytes ppf b =
  if b >= mB then Fmt.pf ppf "%.1f MB" (float_of_int b /. float_of_int mB)
  else if b >= kB then Fmt.pf ppf "%.1f KB" (float_of_int b /. float_of_int kB)
  else Fmt.pf ppf "%d B" b
