(* Plain-text table rendering for the benchmark harness: every paper table
   is printed as an aligned grid so the bench output can be compared with
   the thesis side by side. *)

type t = { title : string; header : string list; mutable rows : string list list }

let create ~title ~header = { title; header; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let widths t =
  let cols = List.length t.header in
  let w = Array.make cols 0 in
  let scan row =
    List.iteri
      (fun i cell -> if i < cols then w.(i) <- max w.(i) (String.length cell))
      row
  in
  scan t.header;
  List.iter scan t.rows;
  w

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let trim_right s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = ' ' do decr n done;
  String.sub s 0 !n

let render t =
  let w = widths t in
  let line row =
    row
    |> List.filteri (fun i _ -> i < Array.length w)
    |> List.mapi (fun i cell -> pad w.(i) cell)
    |> String.concat "  "
    |> trim_right
  in
  let rule =
    Array.to_list w |> List.map (fun n -> String.make n '-') |> String.concat "  "
  in
  let body = List.rev_map line t.rows in
  String.concat "\n"
    (("== " ^ t.title ^ " ==") :: line t.header :: rule :: body)

let print t =
  print_endline (render t);
  print_newline ()
