(** Summary statistics and least-squares fits for the measurement layer. *)

(** Arithmetic mean; raises [Invalid_argument] on an empty array. *)
val mean : float array -> float

(** Unbiased sample variance (0 for fewer than two samples). *)
val variance : float array -> float

val stddev : float array -> float

(** [(min, max)] of a non-empty array. *)
val min_max : float array -> float * float

(** Linear-interpolated percentile, [p] in [\[0, 100\]]. *)
val percentile : float array -> p:float -> float

val median : float array -> float

type linear_fit = { slope : float; intercept : float; r2 : float }

(** Ordinary least squares fit of [ys] against [xs]. *)
val linear_fit : xs:float array -> ys:float array -> linear_fit

type knee_fit = { break_x : float; below : linear_fit; above : linear_fit }

(** Two-segment piecewise-linear fit; the breakpoint minimising total
    squared error.  Detects the MTU knee of the paper's Formula (3.6). *)
val knee_fit : xs:float array -> ys:float array -> knee_fit

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit
