(* The transmitter->receiver TCP framing of §3.5.1: [type, size, data].
   Type and size travel first so the receiver can allocate before the
   binary payload arrives.  An incremental decoder handles arbitrary TCP
   segmentation. *)

type payload_type = Sys_db | Net_db | Sec_db

let type_code = function Sys_db -> 1 | Net_db -> 2 | Sec_db -> 3

let type_of_code = function
  | 1 -> Some Sys_db
  | 2 -> Some Net_db
  | 3 -> Some Sec_db
  | _ -> None

let header_size = 8

let max_frame_size = 16 * 1024 * 1024

type frame = { payload_type : payload_type; data : string }

let encode order { payload_type; data } =
  let b = Bytes.create (header_size + String.length data) in
  Endian.set_u32 order b ~pos:0 (type_code payload_type);
  Endian.set_u32 order b ~pos:4 (String.length data);
  Bytes.blit_string data 0 b header_size (String.length data);
  Bytes.to_string b

(* Incremental decoder: feed it chunks as they arrive; it emits complete
   frames in order. *)
type decoder = {
  order : Endian.order;
  buf : Buffer.t;
  mutable failed : string option;
}

let decoder order = { order; buf = Buffer.create 1024; failed = None }

let feed dec chunk =
  match dec.failed with
  | Some _ -> ()
  | None -> Buffer.add_string dec.buf chunk

let rec drain dec acc =
  match dec.failed with
  | Some m -> Error m
  | None ->
    let content = Buffer.contents dec.buf in
    let len = String.length content in
    if len < header_size then Ok (List.rev acc)
    else begin
      let b = Bytes.unsafe_of_string content in
      let code = Endian.get_u32 dec.order b ~pos:0 in
      let size = Endian.get_u32 dec.order b ~pos:4 in
      match type_of_code code with
      | None ->
        let m = Printf.sprintf "frame: unknown type code %d" code in
        dec.failed <- Some m;
        Error m
      | Some _ when size > max_frame_size ->
        let m = Printf.sprintf "frame: oversized payload (%d bytes)" size in
        dec.failed <- Some m;
        Error m
      | Some payload_type ->
        if len < header_size + size then Ok (List.rev acc)
        else begin
          let data = String.sub content header_size size in
          Buffer.clear dec.buf;
          Buffer.add_substring dec.buf content (header_size + size)
            (len - header_size - size);
          drain dec ({ payload_type; data } :: acc)
        end
    end

let frames dec = drain dec []
