(** Binary status records of Fig 3.10 with explicit byte order.

    Decoding with the wrong [Endian.order] produces garbage — the
    same-architecture requirement of §3.5.1. *)

type sys_record = {
  report : Report.t;
  updated_at : float;  (** monitor clock at last refresh *)
}

(** Encoded size of a system record in bytes. *)
val sys_record_size : int

val encode_sys : Endian.order -> sys_record -> string

(** Decode one system record starting at [pos]. *)
val decode_sys : Endian.order -> string -> pos:int -> (sys_record, string) result

type net_entry = {
  peer : string;
  delay : float;      (** seconds *)
  bandwidth : float;  (** bytes per second *)
  measured_at : float;
}

type net_record = { monitor : string; entries : net_entry list }

val encode_net : Endian.order -> net_record -> string

val decode_net : Endian.order -> string -> (net_record, string) result

type sec_entry = { host : string; level : int }

type sec_record = { entries : sec_entry list }

val encode_sec : Endian.order -> sec_record -> string

val decode_sec : Endian.order -> string -> (sec_record, string) result

(** Parse the dummy security log ("host level" lines, '#' comments). *)
val parse_security_log : string -> (sec_record, string) result
