lib/proto/frame.ml: Buffer Bytes Endian List Printf String
