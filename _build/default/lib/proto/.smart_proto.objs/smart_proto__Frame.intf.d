lib/proto/frame.mli: Endian
