lib/proto/ports.mli:
