lib/proto/wizard_msg.ml: Buffer Bytes Char Endian List Ports String
