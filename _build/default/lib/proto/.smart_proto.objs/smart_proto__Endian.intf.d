lib/proto/endian.mli: Bytes
