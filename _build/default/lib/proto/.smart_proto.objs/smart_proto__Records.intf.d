lib/proto/records.mli: Endian Report
