lib/proto/report.ml: List Option Printf String
