lib/proto/ports.ml:
