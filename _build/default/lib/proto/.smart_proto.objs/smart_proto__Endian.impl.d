lib/proto/endian.ml: Bytes Int32 Int64 String
