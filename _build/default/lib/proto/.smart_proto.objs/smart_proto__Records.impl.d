lib/proto/records.ml: Array Bytes Endian List Report String
