lib/proto/wizard_msg.mli:
