lib/proto/report.mli:
