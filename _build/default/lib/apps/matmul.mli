(** Distributed matrix multiplication over the simulated cluster
    (Appendix C): self-scheduling block tasks shipped over TCP flows,
    computed at each worker's effective rate. *)

type worker_stats = {
  host : string;
  tasks_done : int;
  compute_time : float;
  bytes_in : int;
  bytes_out : int;
}

type result = {
  makespan : float;  (** virtual seconds from start to last result tile *)
  tasks : int;
  workers : worker_stats list;
}

(** Single-machine run time of the full n³ multiplication on a machine,
    accounting for its current load (Fig 5.2's benchmark). *)
val local_time : machine:Smart_host.Machine.t -> n:int -> float

(** [run cluster ~master ~workers ~n ~blk] executes the distributed
    multiplication and drives the simulation until the last tile lands
    (or [deadline] virtual seconds elapse). *)
val run :
  ?deadline:float ->
  Smart_host.Cluster.t ->
  master:int ->
  workers:int list ->
  n:int ->
  blk:int ->
  result
