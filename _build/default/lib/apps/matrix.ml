(* Dense square-matrix arithmetic — the real computation behind the
   thesis's benchmark program (Appendix C.1).  Local mode multiplies for
   real; the distributed simulation only needs the operation counts, but
   tests use these routines to validate the blocked decomposition. *)

type t = { n : int; data : float array }  (* row-major *)

let create n =
  if n <= 0 then invalid_arg "Matrix.create: n must be positive";
  { n; data = Array.make (n * n) 0.0 }

let size m = m.n

let get m ~row ~col = m.data.((row * m.n) + col)

let set m ~row ~col v = m.data.((row * m.n) + col) <- v

let init n f =
  let m = create n in
  for row = 0 to n - 1 do
    for col = 0 to n - 1 do
      set m ~row ~col (f ~row ~col)
    done
  done;
  m

let random ~rng n =
  init n (fun ~row:_ ~col:_ -> Smart_util.Prng.range rng ~lo:(-1.0) ~hi:1.0)

let identity n =
  init n (fun ~row ~col -> if row = col then 1.0 else 0.0)

(* Plain triple loop (the thesis's "vector multiplication way"). *)
let multiply a b =
  if a.n <> b.n then invalid_arg "Matrix.multiply: size mismatch";
  let n = a.n in
  let c = create n in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      let aik = get a ~row:i ~col:k in
      if aik <> 0.0 then
        for j = 0 to n - 1 do
          c.data.((i * n) + j) <-
            c.data.((i * n) + j) +. (aik *. get b ~row:k ~col:j)
        done
    done
  done;
  c

(* Block descriptor of the distributed decomposition: the result block
   covering rows [row0, row0+rows) and cols [col0, col0+cols). *)
type block = { index : int; row0 : int; col0 : int; rows : int; cols : int }

let blocks ~n ~blk =
  if blk <= 0 || blk > n then invalid_arg "Matrix.blocks: bad block size";
  let per_side = (n + blk - 1) / blk in
  List.init (per_side * per_side) (fun index ->
      let bi = index / per_side and bj = index mod per_side in
      let row0 = bi * blk and col0 = bj * blk in
      { index; row0; col0; rows = min blk (n - row0); cols = min blk (n - col0) })

(* Bytes shipped to a worker for one block task: the A row-band and the B
   column-band, 8-byte floats (Appendix C's data exchange). *)
let task_input_bytes ~n b = 8 * ((b.rows * n) + (n * b.cols))

(* Bytes returned: the result block. *)
let task_output_bytes b = 8 * b.rows * b.cols

(* Multiply-accumulate operations in one block task. *)
let task_ops ~n b = b.rows * b.cols * n

(* Compute one result block locally (what a worker executes). *)
let multiply_block a b block =
  if a.n <> b.n then invalid_arg "Matrix.multiply_block: size mismatch";
  let n = a.n in
  let out = Array.make (block.rows * block.cols) 0.0 in
  for i = 0 to block.rows - 1 do
    for k = 0 to n - 1 do
      let aik = get a ~row:(block.row0 + i) ~col:k in
      if aik <> 0.0 then
        for j = 0 to block.cols - 1 do
          out.((i * block.cols) + j) <-
            out.((i * block.cols) + j)
            +. (aik *. get b ~row:k ~col:(block.col0 + j))
        done
    done
  done;
  out

(* Blocked multiplication through the task decomposition; must equal
   [multiply] exactly (tested). *)
let multiply_blocked a b ~blk =
  let n = a.n in
  let c = create n in
  List.iter
    (fun block ->
      let out = multiply_block a b block in
      for i = 0 to block.rows - 1 do
        for j = 0 to block.cols - 1 do
          set c ~row:(block.row0 + i) ~col:(block.col0 + j)
            out.((i * block.cols) + j)
        done
      done)
    (blocks ~n ~blk);
  c

let max_abs_diff a b =
  if a.n <> b.n then invalid_arg "Matrix.max_abs_diff: size mismatch";
  let worst = ref 0.0 in
  Array.iteri
    (fun i x -> worst := Float.max !worst (Float.abs (x -. b.data.(i))))
    a.data;
  !worst

let equal ?(eps = 1e-9) a b = a.n = b.n && max_abs_diff a b <= eps
