(** Dense square matrices and the blocked decomposition used by the
    distributed multiplication program (Appendix C.1). *)

type t

val create : int -> t

val size : t -> int

val get : t -> row:int -> col:int -> float

val set : t -> row:int -> col:int -> float -> unit

val init : int -> (row:int -> col:int -> float) -> t

val random : rng:Smart_util.Prng.t -> int -> t

val identity : int -> t

(** Plain triple-loop product. *)
val multiply : t -> t -> t

type block = { index : int; row0 : int; col0 : int; rows : int; cols : int }

(** Result-block decomposition of an [n]×[n] product into [blk]×[blk]
    tiles (edge tiles may be smaller). *)
val blocks : n:int -> blk:int -> block list

(** Bytes shipped to a worker for one task (A row-band + B col-band). *)
val task_input_bytes : n:int -> block -> int

(** Bytes a worker returns (the result tile). *)
val task_output_bytes : block -> int

(** Multiply-accumulate operations in one task. *)
val task_ops : n:int -> block -> int

(** Compute one result tile (row-major array of [rows*cols]). *)
val multiply_block : t -> t -> block -> float array

(** Product via the task decomposition; equals [multiply]. *)
val multiply_blocked : t -> t -> blk:int -> t

val max_abs_diff : t -> t -> float

val equal : ?eps:float -> t -> t -> bool
