lib/apps/matmul.mli: Smart_host
