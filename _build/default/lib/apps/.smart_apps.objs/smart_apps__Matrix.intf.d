lib/apps/matrix.mli: Smart_util
