lib/apps/matmul.ml: Float List Matrix Queue Smart_host Smart_measure Smart_net Smart_sim
