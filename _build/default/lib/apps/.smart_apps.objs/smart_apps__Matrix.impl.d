lib/apps/matrix.ml: Array Float List Smart_util
