lib/apps/massd.mli: Smart_host
