lib/apps/massd.ml: Float List Queue Smart_host Smart_measure Smart_net Smart_sim String
