(* The massive download program massd (§5.3.2): fetch [data_kb] kilobytes
   in [blk_kb]-kilobyte blocks from several file servers at once.  Each
   server streams one block at a time; a server that finishes its block
   self-schedules the next from the shared queue, so fast servers
   naturally carry more of the file — the behaviour that makes server
   selection matter in Tables 5.7-5.9. *)

type server_stats = {
  host : string;
  blocks : int;
  bytes : int;
}

type result = {
  elapsed : float;            (* virtual seconds *)
  bytes_total : int;
  throughput : float;         (* bytes per second *)
  servers : server_stats list;
}

type server_state = {
  node : int;
  name : string;
  mutable blocks_done : int;
  mutable bytes_done : int;
  mutable current_flow : int option;  (* flow id of the in-flight block *)
  mutable current_bytes : int;
  mutable dead : bool;
}

(* Failure injection for the fault-tolerance extension (Ch. 6 of the
   thesis): at [at] seconds into the run, [host] dies — its in-flight
   block is aborted and requeued on the surviving servers. *)
type failure = { host : string; at : float }

let run ?(deadline = 36000.0) ?(failures = []) cluster ~client ~servers
    ~data_kb ~blk_kb =
  if servers = [] then invalid_arg "Massd.run: no servers";
  if data_kb <= 0 || blk_kb <= 0 then invalid_arg "Massd.run: bad sizes";
  let engine = Smart_host.Cluster.engine cluster in
  let flows = Smart_host.Cluster.flows cluster in
  let topo = Smart_host.Cluster.topology cluster in
  let block_bytes = blk_kb * 1024 in
  let total_blocks = (data_kb + blk_kb - 1) / blk_kb in
  let total_bytes = data_kb * 1024 in
  (* queue of block sizes (the last block may be short) *)
  let queue = Queue.create () in
  for i = 0 to total_blocks - 1 do
    let bytes =
      if i = total_blocks - 1 then
        max 1 (total_bytes - ((total_blocks - 1) * block_bytes))
      else block_bytes
    in
    Queue.add bytes queue
  done;
  let completed = ref 0 in
  let start = Smart_sim.Engine.now engine in
  let states =
    List.map
      (fun node ->
        {
          node;
          name = (Smart_net.Topology.node topo node).Smart_net.Topology.name;
          blocks_done = 0;
          bytes_done = 0;
          current_flow = None;
          current_bytes = 0;
          dead = false;
        })
      servers
  in
  let rec next_block st =
    if not st.dead then
      match Queue.take_opt queue with
      | None -> st.current_flow <- None
      | Some bytes ->
        st.current_bytes <- bytes;
        st.current_flow <-
          Some
            (Smart_net.Flow.start flows ~src:st.node ~dst:client ~bytes
               ~on_complete:(fun _ ->
                 st.current_flow <- None;
                 st.blocks_done <- st.blocks_done + 1;
                 st.bytes_done <- st.bytes_done + bytes;
                 incr completed;
                 next_block st))
  in
  (* schedule the injected failures *)
  List.iter
    (fun { host; at } ->
      match
        List.find_opt
          (fun st -> String.equal st.name host)
          states
      with
      | None -> invalid_arg ("Massd.run: failure host not a server: " ^ host)
      | Some st ->
        ignore
          (Smart_sim.Engine.schedule_at engine ~time:(start +. at) (fun () ->
               st.dead <- true;
               (* abort the in-flight transfer and requeue its block *)
               (match st.current_flow with
               | Some flow_id ->
                 ignore (Smart_net.Flow.abort flows ~flow_id);
                 st.current_flow <- None;
                 Queue.add st.current_bytes queue
               | None -> ());
               (* wake an idle survivor, if any *)
               List.iter
                 (fun other ->
                   if
                     (not other.dead)
                     && other.current_flow = None
                     && not (Queue.is_empty queue)
                   then next_block other)
                 states)))
    failures;
  List.iter next_block states;
  let all_alive_dead () = List.for_all (fun st -> st.dead) states in
  ignore
    (Smart_measure.Runner.run_until engine ~deadline:(start +. deadline)
       (fun () -> !completed >= total_blocks || all_alive_dead ()));
  let elapsed = Float.max 1e-9 (Smart_sim.Engine.now engine -. start) in
  {
    elapsed;
    bytes_total = total_bytes;
    throughput = float_of_int total_bytes /. elapsed;
    servers =
      List.map
        (fun st ->
          { host = st.name; blocks = st.blocks_done; bytes = st.bytes_done })
        states;
  }
