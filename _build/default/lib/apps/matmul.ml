(* Distributed matrix multiplication over the simulated cluster
   (Fig C.1/C.2): the master ships block tasks to workers over TCP flows,
   workers compute at their machine's effective rate, result tiles flow
   back, and idle workers self-schedule the next task from the queue.

   Worker compute time = task_ops / (matmul_rate * compute_share), where
   compute_share accounts for competing workloads (SuperPI in Table 5.6).
   While serving, a worker runs a demand-1 job on its machine, so the
   probes observe the load the computation itself creates. *)

type worker_stats = {
  host : string;
  tasks_done : int;
  compute_time : float;
  bytes_in : int;
  bytes_out : int;
}

type result = {
  makespan : float;          (* seconds of virtual time *)
  tasks : int;
  workers : worker_stats list;
}

type worker_state = {
  node : int;
  machine : Smart_host.Machine.t;
  mutable done_count : int;
  mutable compute_total : float;
  mutable in_bytes : int;
  mutable out_bytes : int;
  mutable job : int option;  (* workload handle while serving *)
}

(* Local single-machine run time for the benchmark chart (Fig 5.2): the
   whole n^3 operation count at the machine's effective rate. *)
let local_time ~(machine : Smart_host.Machine.t) ~n =
  let ops = float_of_int n *. float_of_int n *. float_of_int n in
  let spec = Smart_host.Machine.spec machine in
  ops
  /. (spec.Smart_host.Machine.matmul_rate *. Smart_host.Machine.compute_share machine)

let run ?(deadline = 3600.0) cluster ~master ~workers ~n ~blk =
  if workers = [] then invalid_arg "Matmul.run: no workers";
  let engine = Smart_host.Cluster.engine cluster in
  let flows = Smart_host.Cluster.flows cluster in
  let queue = Queue.create () in
  List.iter (fun b -> Queue.add b queue) (Matrix.blocks ~n ~blk);
  let total_tasks = Queue.length queue in
  let completed = ref 0 in
  let start = Smart_sim.Engine.now engine in
  let states =
    List.map
      (fun node ->
        let machine = Smart_host.Cluster.machine cluster node in
        {
          node;
          machine;
          done_count = 0;
          compute_total = 0.0;
          in_bytes = 0;
          out_bytes = 0;
          job = None;
        })
      workers
  in
  let finish_worker st =
    match st.job with
    | Some handle ->
      ignore
        (Smart_host.Machine.remove_workload st.machine
           ~now:(Smart_sim.Engine.now engine) handle);
      st.job <- None
    | None -> ()
  in
  let rec next_task st =
    match Queue.take_opt queue with
    | None -> finish_worker st
    | Some block ->
      let input = Matrix.task_input_bytes ~n block in
      st.in_bytes <- st.in_bytes + input;
      (* input flow: master -> worker *)
      ignore
        (Smart_net.Flow.start flows ~src:master ~dst:st.node ~bytes:input
           ~on_complete:(fun _ -> compute st block))
  and compute st block =
    let now = Smart_sim.Engine.now engine in
    Smart_host.Machine.sync st.machine ~now;
    (* the serving job itself counts as one runnable process, so the
       share excludes it: share over the other demand *)
    let other_demand =
      Smart_host.Machine.cpu_demand st.machine
      -. (match st.job with Some _ -> 1.0 | None -> 0.0)
    in
    let share = 1.0 /. (1.0 +. Float.max 0.0 other_demand) in
    let spec = Smart_host.Machine.spec st.machine in
    let rate = spec.Smart_host.Machine.matmul_rate *. share in
    let duration = float_of_int (Matrix.task_ops ~n block) /. rate in
    st.compute_total <- st.compute_total +. duration;
    ignore
      (Smart_sim.Engine.schedule_after engine ~delay:duration (fun () ->
           let output = Matrix.task_output_bytes block in
           st.out_bytes <- st.out_bytes + output;
           (* result flow: worker -> master *)
           ignore
             (Smart_net.Flow.start flows ~src:st.node ~dst:master ~bytes:output
                ~on_complete:(fun _ ->
                  st.done_count <- st.done_count + 1;
                  incr completed;
                  next_task st))))
  in
  (* every worker picks up a demand-1 serving job, then self-schedules *)
  List.iter
    (fun st ->
      st.job <-
        Some
          (Smart_host.Machine.add_workload st.machine
             ~now:(Smart_sim.Engine.now engine)
             (Smart_host.Machine.cpu_hog ~demand:1.0));
      next_task st)
    states;
  ignore
    (Smart_measure.Runner.run_until engine ~deadline:(start +. deadline)
       (fun () -> !completed >= total_tasks));
  List.iter finish_worker states;
  let makespan = Smart_sim.Engine.now engine -. start in
  {
    makespan;
    tasks = total_tasks;
    workers =
      List.map
        (fun st ->
          {
            host =
              (Smart_host.Machine.spec st.machine).Smart_host.Machine.name;
            tasks_done = st.done_count;
            compute_time = st.compute_total;
            bytes_in = st.in_bytes;
            bytes_out = st.out_bytes;
          })
        states;
  }
