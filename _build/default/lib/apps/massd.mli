(** The massive download program (§5.3.2): parallel block fetch from
    several file servers with self-scheduling, plus the fault-tolerance
    extension of Ch. 6 (server failure with block requeueing). *)

type server_stats = { host : string; blocks : int; bytes : int }

type result = {
  elapsed : float;     (** virtual seconds *)
  bytes_total : int;
  throughput : float;  (** bytes per second *)
  servers : server_stats list;
}

(** [{ host; at }]: [host] dies [at] seconds into the run; its in-flight
    block is aborted and requeued on the survivors. *)
type failure = { host : string; at : float }

(** [run cluster ~client ~servers ~data_kb ~blk_kb] downloads [data_kb]
    kilobytes in [blk_kb]-kilobyte blocks and drives the simulation until
    the last block lands (or every server has died).  Raises
    [Invalid_argument] if a failure names a host outside [servers]. *)
val run :
  ?deadline:float ->
  ?failures:failure list ->
  Smart_host.Cluster.t ->
  client:int ->
  servers:int list ->
  data_kb:int ->
  blk_kb:int ->
  result
