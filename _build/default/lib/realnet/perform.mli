(** Execute sans-IO component outputs on real sockets: [Udp] becomes a
    datagram, [Stream] a one-shot TCP connection (frames are
    self-delimiting, so connection boundaries do not matter). *)

(** Connect, write everything, close; [false] on any socket error. *)
val send_stream : Unix.sockaddr -> string -> bool

(** Perform a batch of outputs, resolving hosts through the book and
    sending datagrams from [udp].  Unresolvable hosts are dropped. *)
val outputs : Addr_book.t -> udp:Udp_io.t -> Smart_core.Output.t list -> unit
