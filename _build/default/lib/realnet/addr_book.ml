(* Host-name resolution for the real-socket driver.

   In a real deployment every logical host is a distinct machine and the
   book maps names to IP addresses with a zero port shift.  For
   single-machine integration tests, all "hosts" live on 127.0.0.1 and
   each gets a distinct port shift, so the daemons' fixed port numbers
   (Table 4.2) never collide. *)

type entry = { addr : Unix.inet_addr; port_shift : int }

type t = { entries : (string, entry) Hashtbl.t; mutable default_shift : int }

let create () = { entries = Hashtbl.create 8; default_shift = 0 }

let register t ~host ~addr ?(port_shift = 0) () =
  Hashtbl.replace t.entries host { addr; port_shift }

(* Register a loopback pseudo-host with an automatic unique shift. *)
let register_loopback t ~host =
  t.default_shift <- t.default_shift + 1000;
  let entry =
    { addr = Unix.inet_addr_loopback; port_shift = t.default_shift }
  in
  Hashtbl.replace t.entries host entry;
  entry.port_shift

let resolve t ~host ~port =
  match Hashtbl.find_opt t.entries host with
  | Some { addr; port_shift } -> Some (Unix.ADDR_INET (addr, port + port_shift))
  | None ->
    (* fall back to the system resolver, shift 0 *)
    (match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
    | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ ->
      Some (Unix.ADDR_INET (addr, port))
    | _ | (exception _) -> None)

let port_shift t ~host =
  match Hashtbl.find_opt t.entries host with
  | Some { port_shift; _ } -> port_shift
  | None -> 0

(* Reverse lookup of a sockaddr to a registered host name, used to tag
   incoming transmitter streams. *)
let host_of_sockaddr t sockaddr =
  match sockaddr with
  | Unix.ADDR_INET (addr, port) ->
    Hashtbl.fold
      (fun host entry acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if entry.addr = addr
             && port >= entry.port_shift
             && port < entry.port_shift + 1000
          then Some host
          else None)
      t.entries None
  | Unix.ADDR_UNIX _ -> None
