lib/realnet/udp_io.ml: Bytes String Thread Unix
