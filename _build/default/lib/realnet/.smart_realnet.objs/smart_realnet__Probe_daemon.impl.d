lib/realnet/probe_daemon.ml: Addr_book Option Perform Proc_reader Smart_core Smart_proto Thread Udp_io Unix
