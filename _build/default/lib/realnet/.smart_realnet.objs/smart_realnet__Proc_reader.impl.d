lib/realnet/proc_reader.ml: Buffer Bytes List Smart_host String
