lib/realnet/probe_daemon.mli: Addr_book Proc_reader
