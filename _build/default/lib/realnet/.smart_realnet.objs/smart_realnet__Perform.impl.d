lib/realnet/perform.ml: Addr_book Fun List Smart_core String Udp_io Unix
