lib/realnet/service.ml: Addr_book Buffer Bytes Smart_proto String Thread Unix
