lib/realnet/monitor_daemon.ml: Addr_book Fun List Perform Smart_core Smart_proto String Thread Udp_io Unix
