lib/realnet/addr_book.ml: Hashtbl Unix
