lib/realnet/perform.mli: Addr_book Smart_core Udp_io Unix
