lib/realnet/service.mli: Addr_book Unix
