lib/realnet/addr_book.mli: Unix
