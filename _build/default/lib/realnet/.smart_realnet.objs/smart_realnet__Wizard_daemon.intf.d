lib/realnet/wizard_daemon.mli: Addr_book Smart_core
