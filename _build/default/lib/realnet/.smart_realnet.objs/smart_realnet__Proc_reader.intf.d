lib/realnet/proc_reader.mli: Smart_host
