lib/realnet/monitor_daemon.mli: Addr_book Smart_core Smart_proto
