lib/realnet/udp_io.mli: Unix
