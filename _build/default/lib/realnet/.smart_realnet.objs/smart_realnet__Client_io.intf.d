lib/realnet/client_io.mli: Addr_book Bytes Smart_core Smart_proto Smart_util Unix
