lib/realnet/client_io.ml: Addr_book Bytes Float Fun Hashtbl List Mutex Option Printf Service Smart_core Smart_proto Smart_util Thread Udp_io Unix
