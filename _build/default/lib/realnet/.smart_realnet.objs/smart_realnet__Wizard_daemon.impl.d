lib/realnet/wizard_daemon.ml: Addr_book Bytes Fun Hashtbl List Mutex Perform Printf Smart_core Smart_proto String Thread Udp_io Unix
