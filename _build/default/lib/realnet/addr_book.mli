(** Host-name resolution for the real-socket driver.

    Production: one machine per logical host, zero port shift.
    Single-machine tests: every "host" is 127.0.0.1 with a distinct
    port shift so the fixed daemon ports (Table 4.2) never collide. *)

type t

val create : unit -> t

(** Register a host explicitly. *)
val register :
  t -> host:string -> addr:Unix.inet_addr -> ?port_shift:int -> unit -> unit

(** Register a loopback pseudo-host with a fresh unique shift; returns
    the shift. *)
val register_loopback : t -> host:string -> int

(** Resolve to a sockaddr; unregistered hosts go through the system
    resolver with shift 0. *)
val resolve : t -> host:string -> port:int -> Unix.sockaddr option

(** Shift of a registered host (0 when unknown). *)
val port_shift : t -> host:string -> int

(** Best-effort reverse lookup of a registered pseudo-host. *)
val host_of_sockaddr : t -> Unix.sockaddr -> string option
