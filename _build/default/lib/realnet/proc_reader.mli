(** Reads the real /proc of the probe daemon's host.  Paths are
    configurable so tests can substitute fixtures; parsing is shared
    with the simulator ([Smart_host.Procfs]). *)

type t = {
  loadavg_path : string;
  stat_path : string;
  meminfo_path : string;
  netdev_path : string;
  cpuinfo_path : string;
}

(** The standard /proc locations. *)
val default : t

(** Chunked whole-file read ([/proc] files report zero length). *)
val read_file : string -> string option

val snapshot : t -> (Smart_host.Procfs.snapshot, string) result

(** First CPU's bogomips from /proc/cpuinfo. *)
val bogomips : t -> float option

(** First non-loopback interface in /proc/net/dev. *)
val default_iface : t -> string option
