(** UDP endpoint with a background receive thread. *)

type t

val max_datagram : int

(** Bind a socket (port 0 for ephemeral); raises [Unix.Unix_error] on
    conflicts. *)
val bind_port : ?addr:Unix.inet_addr -> int -> t

(** The actually bound port. *)
val port : t -> int

(** Start the receive loop; the handler runs on the receiver thread. *)
val start : t -> (from:Unix.sockaddr -> string -> unit) -> unit

(** Send one datagram; [false] on failure. *)
val send : t -> to_:Unix.sockaddr -> string -> bool

(** Stop the receive loop (if any) and close the socket. *)
val stop : t -> unit

(** Blocking receive with timeout, for one-shot client sockets that have
    not been [start]ed. *)
val recv_timeout : t -> timeout:float -> (Unix.sockaddr * string) option
