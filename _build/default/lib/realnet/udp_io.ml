(* UDP endpoint with a background receive thread.  Handlers run on the
   receiver thread; senders may call from any thread (sendto is atomic
   per datagram). *)

type t = {
  socket : Unix.file_descr;
  port : int;
  mutable running : bool;
  mutable thread : Thread.t option;
}

let max_datagram = 65536

let bind_port ?(addr = Unix.inet_addr_loopback) port =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.setsockopt socket Unix.SO_REUSEADDR true;
  Unix.bind socket (Unix.ADDR_INET (addr, port));
  let port =
    match Unix.getsockname socket with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  { socket; port; running = false; thread = None }

let port t = t.port

(* Start the receive loop; [handler] gets (sender, payload). *)
let start t handler =
  if t.running then invalid_arg "Udp_io.start: already running";
  t.running <- true;
  let buf = Bytes.create max_datagram in
  let loop () =
    while t.running do
      match Unix.recvfrom t.socket buf 0 max_datagram [] with
      | n, from when n > 0 -> handler ~from (Bytes.sub_string buf 0 n)
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> ()
    done
  in
  t.thread <- Some (Thread.create loop ())

let send t ~to_ data =
  try
    ignore
      (Unix.sendto t.socket (Bytes.of_string data) 0 (String.length data) []
         to_);
    true
  with Unix.Unix_error (_, _, _) -> false

let stop t =
  if t.running then begin
    t.running <- false;
    (* unblock the receiver with a datagram to ourselves *)
    (try
       let self = Unix.ADDR_INET (Unix.inet_addr_loopback, t.port) in
       ignore (send t ~to_:self "")
     with _ -> ());
    (match t.thread with Some th -> Thread.join th | None -> ());
    t.thread <- None
  end;
  try Unix.close t.socket with Unix.Unix_error (_, _, _) -> ()

(* Blocking receive with timeout on a one-shot socket (client side). *)
let recv_timeout t ~timeout =
  let readable, _, _ = Unix.select [ t.socket ] [] [] timeout in
  match readable with
  | [] -> None
  | _ ->
    let buf = Bytes.create max_datagram in
    (match Unix.recvfrom t.socket buf 0 max_datagram [] with
    | n, from when n > 0 -> Some (from, Bytes.sub_string buf 0 n)
    | _ -> None
    | exception Unix.Unix_error (_, _, _) -> None)
