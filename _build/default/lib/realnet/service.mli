(** The per-server TCP service the smart socket connects to: a tiny
    line protocol (ECHO / WHO / BYE) for the examples and tests. *)

type t

val create : Addr_book.t -> name:string -> t

(** Blocking line read; [None] on EOF or error. *)
val read_line_opt : Unix.file_descr -> string option

(** Write one line (appends the newline). *)
val write_line : Unix.file_descr -> string -> unit

val start : t -> unit

val stop : t -> unit

(** Connections accepted so far. *)
val connections : t -> int
