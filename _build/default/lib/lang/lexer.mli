(** Lexer for the requirement meta-language (flex rules of Fig 4.1). *)

type error = { line : int; col : int; message : string }

val pp_error : Format.formatter -> error -> unit

(** Tokenize a complete requirement text.  On success the list always
    ends with [Token.Eof]. *)
val tokenize : string -> (Token.located list, error) result
