(** Token alphabet of the requirement meta-language (Fig 4.1). *)

type t =
  | Number of float
  | Netaddr of string  (** dotted IP or dotted host name *)
  | Ident of string    (** classified as VAR/UPARAM/PARAM/BLTIN later *)
  | And
  | Or
  | Gt
  | Ge
  | Lt
  | Le
  | Eq
  | Ne
  | Assign
  | Plus
  | Minus
  | Star
  | Slash
  | Caret
  | Lparen
  | Rparen
  | Newline  (** statement terminator *)
  | Eof

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

type located = { token : t; line : int; col : int }
