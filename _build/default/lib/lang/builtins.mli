(** Built-in mathematical functions of the requirement language (the hoc
    set of §3.6.2): sin, cos, tan, atan, exp, log, ln, log10, sqrt, int,
    abs. *)

val table : (string * (float -> float)) list

val find : string -> (float -> float) option

val is_builtin : string -> bool

val names : string list
