(** Recursive-descent parser for the requirement language (Fig 4.2). *)

type error = { line : int; col : int; message : string }

val pp_error : Format.formatter -> error -> unit

(** Parse pre-lexed tokens into a program. *)
val parse_program : Token.located list -> (Ast.program, error) result

(** Lex and parse a requirement text. *)
val parse : string -> (Ast.program, error) result
