(** Evaluator for requirement programs (yacc semantics of Fig 4.2).

    Qualification rule: the server qualifies iff every *logical*
    statement (one whose main operator is a comparison or boolean
    connective) evaluates truthy; faults inside a logical statement make
    it false. *)

(** Server-side variable binding supplied by the wizard. *)
type binding = string -> Value.t option

type fault = { line : int; message : string }

type statement_result = {
  line : int;
  logical : bool;
  value : (Value.t, string) result;
}

type outcome = {
  qualified : bool;
  statements : statement_result list;
  uparams : (string * Value.t) list;
      (** user-side parameter assignments, in order *)
  faults : fault list;
}

(** Evaluate a program under the given server-side bindings. *)
val run : ?lookup:binding -> Ast.program -> outcome
