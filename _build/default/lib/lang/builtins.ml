(* Built-in mathematical functions (§3.6.2 names the set after the hoc
   calculator of Kernighan & Pike, the thesis's cited parser source). *)

let table : (string * (float -> float)) list =
  [
    ("sin", Float.sin);
    ("cos", Float.cos);
    ("tan", Float.tan);
    ("atan", Float.atan);
    ("exp", Float.exp);
    ("log", Float.log);
    ("ln", Float.log);
    ("log10", Float.log10);
    ("sqrt", Float.sqrt);
    ("int", fun f -> Float.of_int (int_of_float f));
    ("abs", Float.abs);
  ]

let find name = List.assoc_opt name table

let is_builtin name = find name <> None

let names = List.map fst table
