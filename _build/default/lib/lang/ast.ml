(* Abstract syntax of the requirement language (yacc grammar of
   Fig 4.2). *)

type arith_op = Add | Sub | Mul | Div | Pow

type cmp_op = Lt | Le | Gt | Ge | Eq | Ne

type logic_op = And | Or

type expr =
  | Number of float
  | Netaddr of string
  | Var of string
  | Assign of string * expr
  | Arith of arith_op * expr * expr
  | Cmp of cmp_op * expr * expr
  | Logic of logic_op * expr * expr
  | Call of string * expr       (* built-in functions take one argument *)
  | Neg of expr
  | Paren of expr

(* One line of the requirement file. *)
type statement = { line : int; expr : expr }

type program = statement list

(* The yacc actions maintain a [logic] flag: a statement participates in
   qualification iff the *last reduced* operator was logical.  On the
   AST this is exactly "the top node, looking through parentheses, is a
   comparison or a boolean connective". *)
let rec is_logical = function
  | Paren e -> is_logical e
  | Cmp _ | Logic _ -> true
  | Number _ | Netaddr _ | Var _ | Assign _ | Arith _ | Call _ | Neg _ ->
    false

let arith_op_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Pow -> "^"

let cmp_op_to_string = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let logic_op_to_string = function And -> "&&" | Or -> "||"

(* Pretty-printer producing parseable text (round-trip tested). *)
let rec pp_expr ppf = function
  | Number f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Fmt.pf ppf "%.0f" f
    else Fmt.pf ppf "%g" f
  | Netaddr s -> Fmt.string ppf s
  | Var v -> Fmt.string ppf v
  | Assign (v, e) -> Fmt.pf ppf "%s = %a" v pp_expr e
  | Arith (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_expr a (arith_op_to_string op) pp_expr b
  | Cmp (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_expr a (cmp_op_to_string op) pp_expr b
  | Logic (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_expr a (logic_op_to_string op) pp_expr b
  | Call (f, e) -> Fmt.pf ppf "%s(%a)" f pp_expr e
  | Neg e -> Fmt.pf ppf "(-%a)" pp_expr e
  | Paren e -> Fmt.pf ppf "(%a)" pp_expr e

let pp_program ppf prog =
  List.iter (fun st -> Fmt.pf ppf "%a@." pp_expr st.expr) prog

let program_to_string prog = Fmt.str "%a" pp_program prog
