(** Abstract syntax of the requirement language (Fig 4.2). *)

type arith_op = Add | Sub | Mul | Div | Pow

type cmp_op = Lt | Le | Gt | Ge | Eq | Ne

type logic_op = And | Or

type expr =
  | Number of float
  | Netaddr of string
  | Var of string
  | Assign of string * expr
  | Arith of arith_op * expr * expr
  | Cmp of cmp_op * expr * expr
  | Logic of logic_op * expr * expr
  | Call of string * expr  (** built-ins take one argument *)
  | Neg of expr
  | Paren of expr

(** One line of the requirement file. *)
type statement = { line : int; expr : expr }

type program = statement list

(** The yacc logic flag: a statement counts toward qualification iff its
    main operator — looking through parentheses — is a comparison or a
    boolean connective. *)
val is_logical : expr -> bool

val arith_op_to_string : arith_op -> string

val cmp_op_to_string : cmp_op -> string

val logic_op_to_string : logic_op -> string

(** Prints parseable text (round-trip tested). *)
val pp_expr : Format.formatter -> expr -> unit

val pp_program : Format.formatter -> program -> unit

val program_to_string : program -> string
