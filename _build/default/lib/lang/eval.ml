(* Evaluator implementing the yacc action semantics of Fig 4.2.

   - every line is a statement; a statement is *logical* iff its main
     operator (through parentheses) is a comparison or boolean connective;
   - the server qualifies iff every logical statement evaluates truthy
     (the yacc action's  server_ok *= $2);
   - an evaluation fault (undefined variable, division by zero, type
     mismatch) inside a logical statement makes that statement false;
     faults in non-logical statements are recorded as warnings;
   - assignments to user-side parameters accumulate the preferred/denied
     host lists; assignments to anything else create temp variables;
   - server-side variables are read-only bindings supplied by the caller
     (the wizard binds them from the status databases). *)

type binding = string -> Value.t option

type fault = { line : int; message : string }

type statement_result = {
  line : int;
  logical : bool;
  value : (Value.t, string) result;
}

type outcome = {
  qualified : bool;
  statements : statement_result list;
  uparams : (string * Value.t) list;  (* in assignment order *)
  faults : fault list;
}

type env = {
  lookup : binding;
  temps : (string, Value.t) Hashtbl.t;
  mutable uparams_rev : (string * Value.t) list;
}

exception Fault of string

let fault fmt = Fmt.kstr (fun m -> raise (Fault m)) fmt

let num = function
  | Value.Num f -> f
  | Value.Addr a -> fault "address %s used in numeric context" a

let find_uparam env name =
  List.assoc_opt name env.uparams_rev

let rec eval env (e : Ast.expr) : Value.t =
  match e with
  | Ast.Number f -> Value.Num f
  | Ast.Netaddr a -> Value.Addr a
  | Ast.Paren inner -> eval env inner
  | Ast.Var name -> eval_var env name
  | Ast.Assign (name, rhs) -> eval_assign env name rhs
  | Ast.Neg inner -> Value.Num (-.num (eval env inner))
  | Ast.Call (fname, arg) ->
    (match Builtins.find fname with
    | None -> fault "unknown function %s" fname
    | Some f ->
      let v = num (eval env arg) in
      let r = f v in
      if Float.is_nan r then fault "%s(%g) is undefined" fname v
      else Value.Num r)
  | Ast.Arith (op, a, b) ->
    let x = num (eval env a) in
    let y = num (eval env b) in
    (match op with
    | Ast.Add -> Value.Num (x +. y)
    | Ast.Sub -> Value.Num (x -. y)
    | Ast.Mul -> Value.Num (x *. y)
    | Ast.Div ->
      if y = 0.0 then fault "division by 0" else Value.Num (x /. y)
    | Ast.Pow ->
      let r = x ** y in
      if Float.is_nan r then fault "%g ^ %g is undefined" x y
      else Value.Num r)
  | Ast.Cmp (op, a, b) -> eval_cmp env op a b
  | Ast.Logic (op, a, b) ->
    (* no short-circuiting: the yacc actions evaluate both sides *)
    let x = Value.truthy (eval env a) in
    let y = Value.truthy (eval env b) in
    Value.of_bool (match op with Ast.And -> x && y | Ast.Or -> x || y)

and eval_var env name =
  if Vars.is_user_side name then
    match find_uparam env name with
    | Some v -> v
    | None -> fault "user parameter %s not set" name
  else
    match env.lookup name with
    | Some v -> v
    | None ->
      (match Hashtbl.find_opt env.temps name with
      | Some v -> v
      | None -> fault "undefined variable %s" name)

and eval_assign env name rhs =
  if Vars.is_server_side name then
    fault "cannot assign to server-side variable %s" name
  else if Builtins.is_builtin name then
    fault "cannot assign to built-in function %s" name
  else begin
    let v =
      if Vars.is_user_side name then
        (* address context: a bare identifier names a host *)
        match rhs with
        | Ast.Var candidate
          when (not (Vars.is_server_side candidate))
               && (not (Vars.is_user_side candidate))
               && Hashtbl.find_opt env.temps candidate = None ->
          Value.Addr candidate
        | _ -> eval env rhs
      else eval env rhs
    in
    if Vars.is_user_side name then
      env.uparams_rev <- (name, v) :: env.uparams_rev
    else Hashtbl.replace env.temps name v;
    v
  end

and eval_cmp env op a b =
  let va = eval env a in
  let vb = eval env b in
  match (va, vb) with
  | Value.Num x, Value.Num y ->
    Value.of_bool
      (match op with
      | Ast.Lt -> x < y
      | Ast.Le -> x <= y
      | Ast.Gt -> x > y
      | Ast.Ge -> x >= y
      | Ast.Eq -> x = y
      | Ast.Ne -> x <> y)
  | Value.Addr x, Value.Addr y ->
    (match op with
    | Ast.Eq -> Value.of_bool (String.equal x y)
    | Ast.Ne -> Value.of_bool (not (String.equal x y))
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      fault "addresses cannot be ordered")
  | Value.Num _, Value.Addr _ | Value.Addr _, Value.Num _ ->
    (match op with
    | Ast.Eq -> Value.of_bool false
    | Ast.Ne -> Value.of_bool true
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      fault "cannot order a number against an address")

let run ?(lookup : binding = fun _ -> None) (program : Ast.program) : outcome =
  let env = { lookup; temps = Hashtbl.create 8; uparams_rev = [] } in
  let statements =
    List.map
      (fun (st : Ast.statement) ->
        let logical = Ast.is_logical st.Ast.expr in
        let value =
          try Ok (eval env st.Ast.expr) with Fault m -> Error m
        in
        { line = st.Ast.line; logical; value })
      program
  in
  let faults =
    List.filter_map
      (fun s ->
        match s.value with
        | Error message -> Some { line = s.line; message }
        | Ok _ -> None)
      statements
  in
  let qualified =
    List.for_all
      (fun s ->
        if not s.logical then true
        else match s.value with Ok v -> Value.truthy v | Error _ -> false)
      statements
  in
  { qualified; statements; uparams = List.rev env.uparams_rev; faults }
