lib/lang/vars.ml: List Printf String
