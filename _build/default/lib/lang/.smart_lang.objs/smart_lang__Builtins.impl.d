lib/lang/builtins.ml: Float List
