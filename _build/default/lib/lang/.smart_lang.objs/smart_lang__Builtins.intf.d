lib/lang/builtins.mli:
