lib/lang/eval.mli: Ast Value
