lib/lang/value.mli: Format
