lib/lang/lexer.mli: Format Token
