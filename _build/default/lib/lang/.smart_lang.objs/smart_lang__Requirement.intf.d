lib/lang/requirement.mli: Ast Eval Format
