lib/lang/requirement.ml: Ast Builtins Eval Fmt Hashtbl List Parser Value Vars
