lib/lang/token.ml: Fmt
