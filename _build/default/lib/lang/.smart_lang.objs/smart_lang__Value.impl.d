lib/lang/value.ml: Fmt String
