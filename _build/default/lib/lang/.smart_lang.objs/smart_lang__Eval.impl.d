lib/lang/eval.ml: Ast Builtins Float Fmt Hashtbl List String Value Vars
