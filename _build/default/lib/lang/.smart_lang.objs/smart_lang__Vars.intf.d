lib/lang/vars.mli:
