lib/lang/lexer.ml: Fmt List Printf String Token
