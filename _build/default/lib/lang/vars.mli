(** Variable taxonomy of the requirement language (Appendix B).

    Units: loads are plain numbers; CPU fields are fractions in [0,1];
    memory is in megabytes; disk counters are requests/blocks per
    second; interface counters bytes/packets per second;
    [monitor_network_delay] is in milliseconds, [monitor_network_bw] in
    Mbps. *)

(** The 22 [host_*] variables bound from probe reports. *)
val server_side : string list

(** Bound from the network monitor and security databases:
    [monitor_network_delay], [monitor_network_bw],
    [host_security_level]. *)
val monitor_side : string list

val user_preferred_prefix : string

val user_denied_prefix : string

(** The 10 user-side parameters: [user_preferred_host1..5] and
    [user_denied_host1..5]. *)
val user_side : string list

(** Includes the monitor-side names (read-only to requirements). *)
val is_server_side : string -> bool

val is_user_side : string -> bool

val is_preferred_param : string -> bool

val is_denied_param : string -> bool
