(* Recursive-descent parser for the requirement language, mirroring the
   yacc grammar of Fig 4.2 with conventional precedence:

     assignment            lowest, right-associative
     ||
     &&
     comparisons           < <= > >= == !=
     + -
     * /
     unary -
     ^                     right-associative
     atoms                 numbers, addresses, variables, f(x), (e)   *)

type error = { line : int; col : int; message : string }

let pp_error ppf e =
  Fmt.pf ppf "syntax error at %d:%d: %s" e.line e.col e.message

type state = { mutable tokens : Token.located list }

let here st =
  match st.tokens with
  | t :: _ -> (t.Token.line, t.Token.col)
  | [] -> (0, 0)

let fail st message =
  let line, col = here st in
  Error { line; col; message }

let peek st =
  match st.tokens with
  | t :: _ -> t.Token.token
  | [] -> Token.Eof

let peek2 st =
  match st.tokens with
  | _ :: t :: _ -> t.Token.token
  | _ -> Token.Eof

let skip st =
  match st.tokens with
  | _ :: rest -> st.tokens <- rest
  | [] -> ()

let ( let* ) r f = Result.bind r f

let expect st tok message =
  if Token.equal (peek st) tok then begin
    skip st;
    Ok ()
  end
  else fail st message

let rec parse_expr st =
  (* assignment: IDENT '=' expr (not '==') *)
  match (peek st, peek2 st) with
  | Token.Ident name, Token.Assign ->
    skip st;
    skip st;
    let* rhs = parse_expr st in
    Ok (Ast.Assign (name, rhs))
  | _ -> parse_or st

and parse_or st =
  let* lhs = parse_and st in
  let rec loop acc =
    match peek st with
    | Token.Or ->
      skip st;
      let* rhs = parse_and st in
      loop (Ast.Logic (Ast.Or, acc, rhs))
    | _ -> Ok acc
  in
  loop lhs

and parse_and st =
  let* lhs = parse_cmp st in
  let rec loop acc =
    match peek st with
    | Token.And ->
      skip st;
      let* rhs = parse_cmp st in
      loop (Ast.Logic (Ast.And, acc, rhs))
    | _ -> Ok acc
  in
  loop lhs

and parse_cmp st =
  let* lhs = parse_add st in
  let op_of = function
    | Token.Lt -> Some Ast.Lt
    | Token.Le -> Some Ast.Le
    | Token.Gt -> Some Ast.Gt
    | Token.Ge -> Some Ast.Ge
    | Token.Eq -> Some Ast.Eq
    | Token.Ne -> Some Ast.Ne
    | _ -> None
  in
  let rec loop acc =
    match op_of (peek st) with
    | Some op ->
      skip st;
      let* rhs = parse_add st in
      loop (Ast.Cmp (op, acc, rhs))
    | None -> Ok acc
  in
  loop lhs

and parse_add st =
  let* lhs = parse_mul st in
  let rec loop acc =
    match peek st with
    | Token.Plus ->
      skip st;
      let* rhs = parse_mul st in
      loop (Ast.Arith (Ast.Add, acc, rhs))
    | Token.Minus ->
      skip st;
      let* rhs = parse_mul st in
      loop (Ast.Arith (Ast.Sub, acc, rhs))
    | _ -> Ok acc
  in
  loop lhs

and parse_mul st =
  let* lhs = parse_unary st in
  let rec loop acc =
    match peek st with
    | Token.Star ->
      skip st;
      let* rhs = parse_unary st in
      loop (Ast.Arith (Ast.Mul, acc, rhs))
    | Token.Slash ->
      skip st;
      let* rhs = parse_unary st in
      loop (Ast.Arith (Ast.Div, acc, rhs))
    | _ -> Ok acc
  in
  loop lhs

and parse_unary st =
  match peek st with
  | Token.Minus ->
    skip st;
    let* e = parse_unary st in
    Ok (Ast.Neg e)
  | _ -> parse_power st

and parse_power st =
  let* base = parse_atom st in
  match peek st with
  | Token.Caret ->
    skip st;
    (* right-associative, binds tighter than unary minus on the right *)
    let* exponent = parse_unary st in
    Ok (Ast.Arith (Ast.Pow, base, exponent))
  | _ -> Ok base

and parse_atom st =
  match peek st with
  | Token.Number f ->
    skip st;
    Ok (Ast.Number f)
  | Token.Netaddr a ->
    skip st;
    Ok (Ast.Netaddr a)
  | Token.Ident name ->
    skip st;
    if Token.equal (peek st) Token.Lparen then begin
      skip st;
      let* arg = parse_expr st in
      let* () = expect st Token.Rparen "expected ')' after function argument" in
      Ok (Ast.Call (name, arg))
    end
    else Ok (Ast.Var name)
  | Token.Lparen ->
    skip st;
    let* e = parse_expr st in
    let* () = expect st Token.Rparen "expected ')'" in
    Ok (Ast.Paren e)
  | tok -> fail st (Fmt.str "unexpected token %a" Token.pp tok)

(* A program is a newline-separated list of statements. *)
let parse_program tokens =
  let st = { tokens } in
  let rec statements acc =
    match peek st with
    | Token.Newline ->
      skip st;
      statements acc
    | Token.Eof -> Ok (List.rev acc)
    | _ ->
      let line, _ = here st in
      let* expr = parse_expr st in
      let* () =
        match peek st with
        | Token.Newline ->
          skip st;
          Ok ()
        | Token.Eof -> Ok ()
        | tok ->
          fail st (Fmt.str "unexpected token %a after statement" Token.pp tok)
      in
      statements ({ Ast.line; expr } :: acc)
  in
  statements []

let parse src =
  match Lexer.tokenize src with
  | Error e ->
    Error { line = e.Lexer.line; col = e.Lexer.col; message = e.Lexer.message }
  | Ok tokens -> parse_program tokens
