(** Runtime values of the requirement language: numbers plus network
    addresses (the user-side host parameters). *)

type t = Num of float | Addr of string

(** [Num 0.] and [Addr ""] are false; everything else is true. *)
val truthy : t -> bool

(** [true] is [Num 1.], [false] is [Num 0.] (the yacc convention). *)
val of_bool : bool -> t

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
