(* Tests for the host model: machine dynamics (jiffies, load averages,
   memory pools, disk/net counters), /proc synthesis and parsing
   (including the real /proc of the build host), workloads, testbed
   fixtures and the cluster bundle. *)

module H = Smart_host

let spec = H.Testbed.spec_of_name "helene"

(* ------------------------------------------------------------------ *)
(* Machine dynamics                                                     *)
(* ------------------------------------------------------------------ *)

let test_idle_machine () =
  let m = H.Machine.create spec in
  H.Machine.sync m ~now:100.0;
  Alcotest.(check (float 1e-6)) "no demand" 0.0 (H.Machine.cpu_demand m);
  Alcotest.(check (float 1e-6)) "fully free" 1.0 (H.Machine.cpu_free m);
  Alcotest.(check (float 0.5)) "idle jiffies accumulate" 10000.0
    m.H.Machine.jiffies_idle;
  Alcotest.(check (float 1e-6)) "no busy jiffies" 0.0 m.H.Machine.jiffies_user;
  Alcotest.(check (float 0.01)) "load stays zero" 0.0 m.H.Machine.load1

let test_busy_machine_jiffies () =
  let m = H.Machine.create spec in
  ignore (H.Machine.add_workload m ~now:0.0 (H.Machine.cpu_hog ~demand:1.0));
  H.Machine.sync m ~now:50.0;
  Alcotest.(check (float 0.5)) "user jiffies" 5000.0 m.H.Machine.jiffies_user;
  Alcotest.(check (float 0.5)) "no idle" 0.0 m.H.Machine.jiffies_idle;
  Alcotest.(check (float 1e-6)) "cpu_free 0" 0.0 (H.Machine.cpu_free m)

let test_loadavg_convergence () =
  let m = H.Machine.create spec in
  ignore (H.Machine.add_workload m ~now:0.0 (H.Machine.cpu_hog ~demand:2.0));
  H.Machine.sync m ~now:60.0;
  (* load1 after one time constant: 2 * (1 - e^-1) ~ 1.26 *)
  Alcotest.(check (float 0.05)) "one tau" (2.0 *. (1.0 -. Float.exp (-1.0)))
    m.H.Machine.load1;
  H.Machine.sync m ~now:600.0;
  Alcotest.(check (float 0.05)) "converged to demand" 2.0 m.H.Machine.load1;
  Alcotest.(check bool) "load5 slower than load1" true
    (m.H.Machine.load5 < m.H.Machine.load1 +. 1e-9);
  Alcotest.(check bool) "load15 slowest" true
    (m.H.Machine.load15 < m.H.Machine.load5 +. 1e-9)

let test_load_decay_after_removal () =
  let m = H.Machine.create spec in
  let id = H.Machine.add_workload m ~now:0.0 (H.Machine.cpu_hog ~demand:1.0) in
  H.Machine.sync m ~now:300.0;
  Alcotest.(check bool) "loaded" true (m.H.Machine.load1 > 0.9);
  Alcotest.(check bool) "removal works" true (H.Machine.remove_workload m ~now:300.0 id);
  Alcotest.(check bool) "unknown id" false
    (H.Machine.remove_workload m ~now:300.0 id);
  H.Machine.sync m ~now:600.0;
  Alcotest.(check bool) "load decays" true (m.H.Machine.load1 < 0.05)

let test_compute_share () =
  let m = H.Machine.create spec in
  Alcotest.(check (float 1e-9)) "idle share" 1.0 (H.Machine.compute_share m);
  ignore (H.Machine.add_workload m ~now:0.0 (H.Machine.cpu_hog ~demand:1.0));
  Alcotest.(check (float 1e-9)) "competing share" 0.5 (H.Machine.compute_share m)

let test_memory_accounting () =
  let m = H.Machine.create spec in
  let free0 = H.Machine.mem_free m in
  let id = H.Machine.add_workload m ~now:0.0 (H.Machine.mem_hog ~bytes:(32 * 1024 * 1024)) in
  Alcotest.(check int) "free drops by allocation" (free0 - (32 * 1024 * 1024))
    (H.Machine.mem_free m);
  ignore (H.Machine.remove_workload m ~now:1.0 id);
  Alcotest.(check int) "free restored" free0 (H.Machine.mem_free m)

let test_memory_reclaim_under_pressure () =
  let m = H.Machine.create spec in
  let buffers0 = m.H.Machine.mem_buffers in
  (* allocate beyond free: buffers then cache must shrink, and used can
     never exceed total *)
  ignore
    (H.Machine.add_workload m ~now:0.0
       (H.Machine.mem_hog ~bytes:(H.Machine.mem_free m + (64 * 1024 * 1024))));
  Alcotest.(check bool) "buffers reclaimed" true
    (m.H.Machine.mem_buffers < buffers0);
  Alcotest.(check bool) "used bounded by total" true
    (H.Machine.mem_used m <= spec.H.Machine.ram_bytes)

let test_superpi_table41_shape () =
  let m = H.Machine.create { spec with H.Machine.ram_bytes = 256 * 1024 * 1024 } in
  H.Machine.sync m ~now:10.0;
  let free_before = H.Machine.mem_free m in
  let cached_before = m.H.Machine.mem_cached in
  ignore (H.Machine.add_workload m ~now:10.0 H.Machine.superpi);
  H.Machine.sync m ~now:300.0;
  Alcotest.(check bool) "free collapses" true
    (H.Machine.mem_free m < free_before / 10);
  Alcotest.(check bool) "buffers shrink" true (m.H.Machine.mem_buffers < 1024 * 1024);
  Alcotest.(check bool) "cache grows" true (m.H.Machine.mem_cached > cached_before);
  Alcotest.(check bool) "load above 1" true (m.H.Machine.load1 > 1.0)

let test_disk_counters () =
  let m = H.Machine.create spec in
  ignore (H.Machine.add_workload m ~now:0.0 (H.Machine.disk_hog ~reqps:100.0));
  H.Machine.sync m ~now:10.0;
  Alcotest.(check (float 1.0)) "read requests" 500.0 m.H.Machine.disk_rreq;
  Alcotest.(check (float 1.0)) "write requests" 500.0 m.H.Machine.disk_wreq;
  Alcotest.(check (float 10.0)) "blocks are 8x requests" 4000.0
    m.H.Machine.disk_rblocks

let test_net_counters () =
  let m = H.Machine.create spec in
  H.Machine.count_tx m ~bytes:1000.0;
  H.Machine.count_rx m ~bytes:2896.0;
  Alcotest.(check (float 1e-6)) "tbytes" 1000.0 m.H.Machine.eth.H.Machine.tbytes;
  Alcotest.(check (float 1e-6)) "rbytes" 2896.0 m.H.Machine.eth.H.Machine.rbytes;
  Alcotest.(check bool) "packets counted" true
    (m.H.Machine.eth.H.Machine.rpackets >= 2.0)

let test_sync_monotone () =
  let m = H.Machine.create spec in
  H.Machine.sync m ~now:10.0;
  (* syncing into the past is a no-op, not a crash *)
  H.Machine.sync m ~now:5.0;
  Alcotest.(check (float 1e-9)) "clock keeps max" 10.0 m.H.Machine.last_sync

(* ------------------------------------------------------------------ *)
(* Procfs                                                               *)
(* ------------------------------------------------------------------ *)

let test_procfs_roundtrip () =
  let m = H.Machine.create spec in
  ignore (H.Machine.add_workload m ~now:0.0 (H.Machine.cpu_hog ~demand:0.5));
  H.Machine.sync m ~now:120.0;
  H.Machine.count_tx m ~bytes:4096.0;
  (match H.Procfs.parse_loadavg (H.Procfs.render_loadavg m) with
  | Ok l ->
    Alcotest.(check (float 0.01)) "load1 round trip" m.H.Machine.load1
      l.H.Procfs.l1
  | Error e -> Alcotest.failf "loadavg: %s" e);
  (match H.Procfs.parse_stat (H.Procfs.render_stat m) with
  | Ok (cpu, disk) ->
    Alcotest.(check (float 1.0)) "user jiffies" m.H.Machine.jiffies_user
      cpu.H.Procfs.user;
    Alcotest.(check (float 1e-6)) "disk" 0.0 disk.H.Procfs.rreq
  | Error e -> Alcotest.failf "stat: %s" e);
  (match H.Procfs.parse_meminfo (H.Procfs.render_meminfo m) with
  | Ok mem ->
    Alcotest.(check int) "total" spec.H.Machine.ram_bytes mem.H.Procfs.total;
    Alcotest.(check int) "used+free=total" mem.H.Procfs.total
      (mem.H.Procfs.used + mem.H.Procfs.free)
  | Error e -> Alcotest.failf "meminfo: %s" e);
  match H.Procfs.parse_net_dev (H.Procfs.render_net_dev m) with
  | Ok stats ->
    let eth =
      List.find (fun s -> s.H.Procfs.iface = "eth0") stats
    in
    Alcotest.(check (float 1.0)) "tbytes" 4096.0 eth.H.Procfs.tbytes
  | Error e -> Alcotest.failf "net_dev: %s" e

(* /proc files report zero length; read in chunks *)
let read_file path =
  match Smart_realnet.Proc_reader.read_file path with
  | Some s -> s
  | None -> Alcotest.failf "cannot read %s" path

(* the parsers accept the real modern /proc formats of the build host *)
let test_parse_real_proc () =
  if Sys.file_exists "/proc/loadavg" then begin
    (match H.Procfs.parse_loadavg (read_file "/proc/loadavg") with
    | Ok l -> Alcotest.(check bool) "load sane" true (l.H.Procfs.l1 >= 0.0)
    | Error e -> Alcotest.failf "real loadavg: %s" e);
    (match H.Procfs.parse_stat (read_file "/proc/stat") with
    | Ok (cpu, _) ->
      Alcotest.(check bool) "jiffies sane" true (cpu.H.Procfs.idle >= 0.0)
    | Error e -> Alcotest.failf "real stat: %s" e);
    (match H.Procfs.parse_meminfo (read_file "/proc/meminfo") with
    | Ok m -> Alcotest.(check bool) "total positive" true (m.H.Procfs.total > 0)
    | Error e -> Alcotest.failf "real meminfo: %s" e);
    match H.Procfs.parse_net_dev (read_file "/proc/net/dev") with
    | Ok stats -> Alcotest.(check bool) "interfaces" true (stats <> [])
    | Error e -> Alcotest.failf "real net_dev: %s" e
  end

let test_parse_modern_meminfo_format () =
  let text = "MemTotal:  1024 kB\nMemFree:  512 kB\nBuffers:  64 kB\nCached:  128 kB\n" in
  match H.Procfs.parse_meminfo text with
  | Ok m ->
    Alcotest.(check int) "total" (1024 * 1024) m.H.Procfs.total;
    Alcotest.(check int) "free" (512 * 1024) m.H.Procfs.free;
    Alcotest.(check int) "buffers" (64 * 1024) m.H.Procfs.buffers
  | Error e -> Alcotest.failf "modern meminfo: %s" e

let test_parse_garbage () =
  Alcotest.(check bool) "loadavg" true
    (Result.is_error (H.Procfs.parse_loadavg "what"));
  Alcotest.(check bool) "stat" true
    (Result.is_error (H.Procfs.parse_stat "nope\n"));
  Alcotest.(check bool) "meminfo" true
    (Result.is_error (H.Procfs.parse_meminfo "nope\n"));
  Alcotest.(check bool) "net_dev" true
    (Result.is_error (H.Procfs.parse_net_dev "nope\n"))

(* ------------------------------------------------------------------ *)
(* Testbed and cluster                                                  *)
(* ------------------------------------------------------------------ *)

let test_testbed_specs () =
  Alcotest.(check int) "11 machines" 11 (List.length H.Testbed.specs);
  let dalmatian = H.Testbed.spec_of_name "dalmatian" in
  Alcotest.(check (float 1e-6)) "bogomips of Table 5.1" 4771.02
    dalmatian.H.Machine.bogomips;
  (* Fig 5.2 shape: P3-866 and P4-2.4 beat every P4-1.6..1.8 *)
  let rate name = (H.Testbed.spec_of_name name).H.Machine.matmul_rate in
  List.iter
    (fun fast ->
      List.iter
        (fun slow ->
          Alcotest.(check bool)
            (fast ^ " faster than " ^ slow)
            true
            (rate fast > rate slow))
        [ "mimas"; "telesto"; "helene"; "phoebe"; "calypso"; "titan-x";
          "pandora-x" ])
    [ "sagit"; "lhost"; "dalmatian"; "dione" ]

let test_testbed_connectivity () =
  let c = H.Testbed.icpp2005 () in
  let topo = H.Cluster.topology c in
  let ids = List.map (H.Cluster.resolve_exn c) H.Testbed.machine_names in
  (* every machine reaches every other *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b then
            Alcotest.(check bool) "reachable" true
              (Smart_net.Topology.path topo ~src:a ~dst:b <> []))
        ids)
    ids

let test_cluster_resolve () =
  let c = H.Testbed.icpp2005 () in
  Alcotest.(check bool) "by name" true (H.Cluster.resolve c "sagit" <> None);
  Alcotest.(check bool) "by ip" true
    (H.Cluster.resolve c "192.168.1.2" <> None);
  Alcotest.(check bool) "unknown" true (H.Cluster.resolve c "nope" = None);
  Alcotest.check_raises "resolve_exn"
    (Invalid_argument "Cluster.resolve_exn: unknown host nope") (fun () ->
      ignore (H.Cluster.resolve_exn c "nope"))

let test_cluster_machines () =
  let c = H.Testbed.icpp2005 () in
  Alcotest.(check int) "11 machines attached" 11
    (List.length (H.Cluster.machines c));
  let sagit = H.Cluster.resolve_exn c "sagit" in
  Alcotest.(check string) "machine spec" "sagit"
    (H.Machine.spec (H.Cluster.machine c sagit)).H.Machine.name;
  let backbone = H.Cluster.resolve_exn c "lab-bb" in
  Alcotest.(check bool) "switch has no machine" true
    (H.Cluster.machine_opt c backbone = None)

let test_cluster_flow_counts_nic_bytes () =
  let c = H.Testbed.icpp2005 () in
  let a = H.Cluster.resolve_exn c "sagit" in
  let b = H.Cluster.resolve_exn c "dione" in
  let done_ = ref false in
  ignore
    (Smart_net.Flow.start (H.Cluster.flows c) ~src:a ~dst:b ~bytes:1_000_000
       ~on_complete:(fun _ -> done_ := true));
  Smart_sim.Engine.run_until_idle (H.Cluster.engine c);
  Alcotest.(check bool) "flow completed" true !done_;
  let ma = H.Cluster.machine c a and mb = H.Cluster.machine c b in
  Alcotest.(check (float 1.0)) "sender tx counted" 1_000_000.0
    ma.H.Machine.eth.H.Machine.tbytes;
  Alcotest.(check (float 1.0)) "receiver rx counted" 1_000_000.0
    mb.H.Machine.eth.H.Machine.rbytes

let test_shape_egress () =
  let c = H.Testbed.icpp2005 () in
  let n = H.Cluster.resolve_exn c "lhost" in
  Alcotest.(check bool) "found channel" true
    (H.Cluster.shape_egress c ~node:n ~rate_bytes_per_sec:(Some 1e6));
  let topo = H.Cluster.topology c in
  let out = List.hd (Smart_net.Topology.path topo ~src:n
                       ~dst:(H.Cluster.resolve_exn c "sagit")) in
  Alcotest.(check (float 1.0)) "flow capacity clamped" 1e6
    (Smart_net.Link.capacity_for_flows out);
  Alcotest.(check bool) "unshape" true
    (H.Cluster.shape_egress c ~node:n ~rate_bytes_per_sec:None);
  Alcotest.(check (float 1.0)) "restored" 12.5e6
    (Smart_net.Link.capacity_for_flows out)

let test_paths_fixture () =
  let f = H.Testbed.paths () in
  Alcotest.(check int) "six paths" 6 (List.length f.H.Testbed.paths);
  let labels = List.map (fun p -> p.H.Testbed.label) f.H.Testbed.paths in
  Alcotest.(check (list string)) "labels a-f"
    [ "a"; "b"; "c"; "d"; "e"; "f" ] labels;
  (* path f is the loopback: src = dst *)
  let pf = List.nth f.H.Testbed.paths 5 in
  Alcotest.(check bool) "loopback" true (pf.H.Testbed.src = pf.H.Testbed.dst)

let prop_machine_used_bounded =
  QCheck.Test.make ~name:"memory used never exceeds RAM" ~count:200
    QCheck.(list (int_range 0 (384 * 1024 * 1024)))
    (fun allocs ->
      let m = H.Machine.create spec in
      List.iteri
        (fun i bytes ->
          ignore
            (H.Machine.add_workload m ~now:(float_of_int i)
               (H.Machine.mem_hog ~bytes)))
        allocs;
      H.Machine.mem_used m <= spec.H.Machine.ram_bytes
      && H.Machine.mem_free m >= 0)

let () =
  Alcotest.run "smart_host"
    [
      ( "machine",
        [
          Alcotest.test_case "idle" `Quick test_idle_machine;
          Alcotest.test_case "busy jiffies" `Quick test_busy_machine_jiffies;
          Alcotest.test_case "loadavg convergence" `Quick
            test_loadavg_convergence;
          Alcotest.test_case "load decay" `Quick test_load_decay_after_removal;
          Alcotest.test_case "compute share" `Quick test_compute_share;
          Alcotest.test_case "memory accounting" `Quick test_memory_accounting;
          Alcotest.test_case "reclaim under pressure" `Quick
            test_memory_reclaim_under_pressure;
          Alcotest.test_case "SuperPI Table 4.1 shape" `Quick
            test_superpi_table41_shape;
          Alcotest.test_case "disk counters" `Quick test_disk_counters;
          Alcotest.test_case "net counters" `Quick test_net_counters;
          Alcotest.test_case "sync monotone" `Quick test_sync_monotone;
        ] );
      ( "procfs",
        [
          Alcotest.test_case "render/parse round trip" `Quick
            test_procfs_roundtrip;
          Alcotest.test_case "real /proc of build host" `Quick
            test_parse_real_proc;
          Alcotest.test_case "modern meminfo" `Quick
            test_parse_modern_meminfo_format;
          Alcotest.test_case "garbage rejected" `Quick test_parse_garbage;
        ] );
      ( "testbed/cluster",
        [
          Alcotest.test_case "Table 5.1 specs" `Quick test_testbed_specs;
          Alcotest.test_case "connectivity" `Quick test_testbed_connectivity;
          Alcotest.test_case "resolve" `Quick test_cluster_resolve;
          Alcotest.test_case "machines" `Quick test_cluster_machines;
          Alcotest.test_case "flow NIC accounting" `Quick
            test_cluster_flow_counts_nic_bytes;
          Alcotest.test_case "shape egress" `Quick test_shape_egress;
          Alcotest.test_case "paths fixture" `Quick test_paths_fixture;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_machine_used_bounded ] );
    ]
