(* Tests for the measurement layer: the RTT sweep and its MTU knee, the
   one-way UDP stream estimator (accuracy, sub-MTU under-estimation,
   shaped paths), and the packet-pair / SLoPS baselines. *)

module M = Smart_measure
module H = Smart_host

let mbps = Smart_util.Units.bytes_per_sec_to_mbps

let path_world ?(sagit_mtu = 1500) () =
  let f = H.Testbed.paths ~sagit_mtu () in
  let stack = H.Cluster.stack f.H.Testbed.cluster in
  (f, stack)

(* ------------------------------------------------------------------ *)
(* RTT sweep and knee                                                   *)
(* ------------------------------------------------------------------ *)

let sweep ?(mtu = 1500) () =
  let f, stack = path_world ~sagit_mtu:mtu () in
  let r =
    M.Rtt_probe.sweep ~min_size:100 ~max_size:4500 ~step:100 stack
      ~src:f.H.Testbed.sagit ~dst:f.H.Testbed.suna ()
  in
  (r, M.Rtt_probe.analyze r)

let test_sweep_complete () =
  let r, _ = sweep () in
  Alcotest.(check int) "no losses on the LAN" 0 r.M.Rtt_probe.lost;
  Alcotest.(check int) "45 samples" 45 (List.length r.M.Rtt_probe.samples);
  (* sorted by payload *)
  let payloads = List.map (fun s -> s.M.Rtt_probe.payload) r.M.Rtt_probe.samples in
  Alcotest.(check (list int)) "sorted" (List.sort compare payloads) payloads

let test_knee_tracks_mtu () =
  List.iter
    (fun mtu ->
      let _, knee = sweep ~mtu () in
      Alcotest.(check bool)
        (Printf.sprintf "significant at MTU %d" mtu)
        true knee.M.Rtt_probe.significant;
      Alcotest.(check bool)
        (Printf.sprintf "knee near MTU %d" mtu)
        true
        (Float.abs (knee.M.Rtt_probe.knee_bytes -. float_of_int mtu)
        < Float.max (0.15 *. float_of_int mtu) 150.0))
    [ 1500; 1000; 500 ]

let test_knee_slopes_formula36 () =
  let _, knee = sweep () in
  (* above the knee: the true available bandwidth (~100 Mbps) *)
  Alcotest.(check bool) "bw above ~ 95 Mbps" true
    (mbps knee.M.Rtt_probe.bw_above > 80.0
    && mbps knee.M.Rtt_probe.bw_above < 115.0);
  (* below: 1/(1/B + 1/Speed_init) with Speed_init = 25 Mbps -> ~20 Mbps *)
  Alcotest.(check bool) "bw below ~ 20 Mbps" true
    (mbps knee.M.Rtt_probe.bw_below > 12.0
    && mbps knee.M.Rtt_probe.bw_below < 25.0)

let test_no_knee_on_loopback () =
  let f, stack = path_world () in
  let r =
    M.Rtt_probe.sweep ~min_size:100 ~max_size:4500 ~step:100 stack
      ~src:f.H.Testbed.sagit ~dst:f.H.Testbed.sagit ()
  in
  let knee = M.Rtt_probe.analyze r in
  Alcotest.(check bool) "observation 1: no knee on loopback" false
    knee.M.Rtt_probe.significant

let test_ping_matches_table32 () =
  let f, stack = path_world () in
  List.iter
    (fun (p : H.Testbed.rtt_path) ->
      match
        M.Rtt_probe.ping ~count:3 stack ~src:p.H.Testbed.src
          ~dst:p.H.Testbed.dst ()
      with
      | Some rtt ->
        (* within a factor 2.5 of the thesis's ping column *)
        let ratio = rtt /. p.H.Testbed.ping_rtt in
        Alcotest.(check bool)
          (Printf.sprintf "path %s rtt %.3f ms vs %.3f ms"
             p.H.Testbed.label
             (Smart_util.Units.s_to_ms rtt)
             (Smart_util.Units.s_to_ms p.H.Testbed.ping_rtt))
          true
          (ratio > 0.4 && ratio < 2.5)
      | None -> Alcotest.failf "ping lost on path %s" p.H.Testbed.label)
    f.H.Testbed.paths

(* ------------------------------------------------------------------ *)
(* One-way UDP stream estimator                                         *)
(* ------------------------------------------------------------------ *)

let test_udp_stream_accuracy () =
  let f, stack = path_world () in
  match
    M.Udp_stream.measure ~trials:8 stack ~src:f.H.Testbed.sagit
      ~dst:f.H.Testbed.suna ()
  with
  | Some r ->
    Alcotest.(check int) "no failures" 0 r.M.Udp_stream.failures;
    Alcotest.(check bool) "avg within 20% of 95 Mbps" true
      (mbps r.M.Udp_stream.avg_bw > 76.0 && mbps r.M.Udp_stream.avg_bw < 120.0);
    Alcotest.(check bool) "min <= avg <= max" true
      (r.M.Udp_stream.min_bw <= r.M.Udp_stream.avg_bw +. 1e-9
      && r.M.Udp_stream.avg_bw <= r.M.Udp_stream.max_bw +. 1e-9)
  | None -> Alcotest.fail "measurement failed"

let test_udp_stream_sub_mtu_underestimates () =
  (* Table 3.3: probes below the MTU are dragged down by Speed_init *)
  let f, stack = path_world () in
  let measure s1 s2 =
    match
      M.Udp_stream.measure ~s1 ~s2 ~trials:6 stack ~src:f.H.Testbed.sagit
        ~dst:f.H.Testbed.suna ()
    with
    | Some r -> r.M.Udp_stream.avg_bw
    | None -> Alcotest.fail "measurement failed"
  in
  let below = measure 100 1000 in
  let above = measure 1600 2900 in
  Alcotest.(check bool) "sub-MTU < half of super-MTU" true
    (below < 0.5 *. above);
  Alcotest.(check bool) "sub-MTU ~ 18-21 Mbps" true
    (mbps below > 12.0 && mbps below < 26.0)

let test_udp_stream_through_shaper () =
  let f, stack = path_world () in
  let c = f.H.Testbed.cluster in
  ignore
    (H.Cluster.shape_access c ~node:f.H.Testbed.suna
       ~rate_bytes_per_sec:(Some (Smart_util.Units.mbps_to_bytes_per_sec 2.0)));
  match
    M.Udp_stream.measure ~trials:6 stack ~src:f.H.Testbed.sagit
      ~dst:f.H.Testbed.suna ()
  with
  | Some r ->
    Alcotest.(check bool) "measures the shaped rate" true
      (mbps r.M.Udp_stream.avg_bw > 1.5 && mbps r.M.Udp_stream.avg_bw < 2.6)
  | None -> Alcotest.fail "measurement failed"

let test_udp_stream_sees_background_flows () =
  (* a standing bulk flow consumes half the path; the estimator must see
     roughly the residual *)
  let f, stack = path_world () in
  let c = f.H.Testbed.cluster in
  let ubin = H.Cluster.resolve_exn c "ubin" in
  ignore
    (H.Cluster.shape_access c ~node:ubin
       ~rate_bytes_per_sec:(Some (Smart_util.Units.mbps_to_bytes_per_sec 50.0)));
  ignore
    (Smart_net.Flow.start (H.Cluster.flows c) ~src:ubin ~dst:f.H.Testbed.suna
       ~bytes:3_000_000_000 ~on_complete:(fun _ -> ()));
  match
    M.Udp_stream.measure ~trials:6 stack ~src:f.H.Testbed.sagit
      ~dst:f.H.Testbed.suna ()
  with
  | Some r ->
    Alcotest.(check bool) "sees ~50 Mbps residual" true
      (mbps r.M.Udp_stream.avg_bw > 35.0 && mbps r.M.Udp_stream.avg_bw < 70.0)
  | None -> Alcotest.fail "measurement failed"

let test_udp_stream_bad_sizes () =
  let f, stack = path_world () in
  Alcotest.(check bool) "s1 >= s2 rejected" true
    (try
       ignore
         (M.Udp_stream.measure ~s1:2000 ~s2:2000 stack ~src:f.H.Testbed.sagit
            ~dst:f.H.Testbed.suna ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Baselines                                                            *)
(* ------------------------------------------------------------------ *)

let test_packet_pair_on_clean_path () =
  let f, stack = path_world () in
  match
    M.Packet_pair.measure ~trials:15 stack ~src:f.H.Testbed.sagit
      ~dst:f.H.Testbed.suna ()
  with
  | Some r ->
    Alcotest.(check bool) "median near capacity" true
      (mbps r.M.Packet_pair.median_bw > 70.0
      && mbps r.M.Packet_pair.median_bw < 130.0);
    Alcotest.(check bool) "mostly reliable on a quiet LAN" true
      (r.M.Packet_pair.reliability > 0.4)
  | None -> Alcotest.fail "measurement failed"

let test_packet_pair_degrades_with_jitter () =
  (* §2.1: pipechar is "less robust to network delay fluctuations" *)
  let f, stack = path_world () in
  let clean =
    match
      M.Packet_pair.measure ~trials:15 stack ~src:f.H.Testbed.sagit
        ~dst:f.H.Testbed.suna ()
    with
    | Some r -> r.M.Packet_pair.reliability
    | None -> 0.0
  in
  (* the cmui path carries heavy jitter and bursty cross traffic *)
  let cmui = H.Cluster.resolve_exn f.H.Testbed.cluster "cmui" in
  let noisy =
    match
      M.Packet_pair.measure ~trials:15 stack ~src:f.H.Testbed.sagit ~dst:cmui ()
    with
    | Some r -> r.M.Packet_pair.reliability
    | None -> 0.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "reliability drops (%.2f -> %.2f)" clean noisy)
    true (noisy < clean)

let test_slops_brackets_truth () =
  let f, stack = path_world () in
  let r = M.Slops.measure stack ~src:f.H.Testbed.sagit ~dst:f.H.Testbed.suna () in
  Alcotest.(check bool) "low <= high" true (r.M.Slops.low <= r.M.Slops.high);
  Alcotest.(check bool)
    (Printf.sprintf "bracket [%.1f, %.1f] overlaps ~95 Mbps"
       (mbps r.M.Slops.low) (mbps r.M.Slops.high))
    true
    (mbps r.M.Slops.low < 110.0 && mbps r.M.Slops.high > 70.0)

let test_slops_trend_detection () =
  Alcotest.(check bool) "increasing" true
    (M.Slops.trend (Array.init 30 (fun i -> 0.001 +. (0.0005 *. float_of_int i)))
    = M.Slops.Increasing);
  Alcotest.(check bool) "flat" true
    (M.Slops.trend (Array.init 30 (fun i -> 0.001 +. (1e-7 *. float_of_int (i mod 2))))
    <> M.Slops.Increasing);
  Alcotest.(check bool) "too short is inconclusive" true
    (M.Slops.trend [| 1.0; 2.0 |] = M.Slops.Inconclusive)

(* ------------------------------------------------------------------ *)
(* Traceroute (TTL / time-exceeded)                                     *)
(* ------------------------------------------------------------------ *)

let test_ttl_time_exceeded () =
  let f, stack = path_world () in
  let c = f.H.Testbed.cluster in
  let tokxp = H.Cluster.resolve_exn c "tokxp" in
  (* ttl 1 dies at the first switch *)
  (match
     M.Traceroute.probe_ttl stack ~src:f.H.Testbed.sagit ~dst:tokxp ~ttl:1 ()
   with
  | M.Traceroute.Router node, Some rtt ->
    Alcotest.(check string) "first hop is the campus switch" "campus-sw"
      (Smart_net.Topology.node (H.Cluster.topology c) node)
        .Smart_net.Topology.name;
    Alcotest.(check bool) "small rtt" true (rtt < 0.01)
  | _ -> Alcotest.fail "expected a router reply");
  (* a generous ttl reaches the destination *)
  match
    M.Traceroute.probe_ttl stack ~src:f.H.Testbed.sagit ~dst:tokxp ~ttl:32 ()
  with
  | M.Traceroute.Destination, Some _ -> ()
  | _ -> Alcotest.fail "expected the destination's port-unreachable"

let test_traceroute_full_path () =
  let f, stack = path_world () in
  let c = f.H.Testbed.cluster in
  let tokxp = H.Cluster.resolve_exn c "tokxp" in
  let hops =
    M.Traceroute.run ~measure_bandwidth:false stack ~src:f.H.Testbed.sagit
      ~dst:tokxp ()
  in
  (* sagit -> campus-sw -> singaren -> apan-jp -> tokxp *)
  Alcotest.(check int) "four hops" 4 (List.length hops);
  let names =
    List.map
      (fun h ->
        match h.M.Traceroute.node with
        | Some node ->
          (Smart_net.Topology.node (H.Cluster.topology c) node)
            .Smart_net.Topology.name
        | None -> "*")
      hops
  in
  Alcotest.(check (list string)) "hop sequence"
    [ "campus-sw"; "singaren"; "apan-jp"; "tokxp" ]
    names;
  (* RTTs are monotone along this jitter-light path *)
  let rtts = List.filter_map (fun h -> h.M.Traceroute.rtt) hops in
  Alcotest.(check int) "every hop answered" 4 (List.length rtts);
  List.iteri
    (fun i rtt ->
      if i > 0 then
        Alcotest.(check bool) "rtt grows along the path" true
          (rtt >= List.nth rtts (i - 1) -. 0.002))
    rtts

let test_traceroute_ttls_are_sequential () =
  let f, stack = path_world () in
  let hops =
    M.Traceroute.run ~measure_bandwidth:false stack ~src:f.H.Testbed.sagit
      ~dst:f.H.Testbed.suna ()
  in
  Alcotest.(check (list int)) "ttl column"
    (List.init (List.length hops) (fun i -> i + 1))
    (List.map (fun h -> h.M.Traceroute.ttl) hops)

let () =
  Alcotest.run "smart_measure"
    [
      ( "rtt",
        [
          Alcotest.test_case "sweep complete" `Quick test_sweep_complete;
          Alcotest.test_case "knee tracks MTU (Figs 3.3-3.5)" `Quick
            test_knee_tracks_mtu;
          Alcotest.test_case "Formula 3.6 slopes" `Quick
            test_knee_slopes_formula36;
          Alcotest.test_case "no knee on loopback" `Quick
            test_no_knee_on_loopback;
          Alcotest.test_case "ping vs Table 3.2" `Quick test_ping_matches_table32;
        ] );
      ( "udp stream",
        [
          Alcotest.test_case "accuracy" `Quick test_udp_stream_accuracy;
          Alcotest.test_case "sub-MTU under-estimates (Table 3.3)" `Quick
            test_udp_stream_sub_mtu_underestimates;
          Alcotest.test_case "through a shaper" `Quick
            test_udp_stream_through_shaper;
          Alcotest.test_case "sees background flows" `Quick
            test_udp_stream_sees_background_flows;
          Alcotest.test_case "bad sizes" `Quick test_udp_stream_bad_sizes;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "packet pair clean path" `Quick
            test_packet_pair_on_clean_path;
          Alcotest.test_case "packet pair vs jitter" `Quick
            test_packet_pair_degrades_with_jitter;
          Alcotest.test_case "SLoPS brackets truth" `Quick
            test_slops_brackets_truth;
          Alcotest.test_case "SLoPS trend detection" `Quick
            test_slops_trend_detection;
        ] );
      ( "traceroute",
        [
          Alcotest.test_case "TTL time-exceeded" `Quick test_ttl_time_exceeded;
          Alcotest.test_case "full path" `Quick test_traceroute_full_path;
          Alcotest.test_case "sequential TTLs" `Quick
            test_traceroute_ttls_are_sequential;
        ] );
    ]
