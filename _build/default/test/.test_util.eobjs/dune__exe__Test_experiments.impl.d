test/test_experiments.ml: Alcotest Float List Printf Smart_experiments Smart_host Smart_measure Smart_proto String
