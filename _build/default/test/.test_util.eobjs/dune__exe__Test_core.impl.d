test/test_core.ml: Alcotest List Option Printf Result Smart_core Smart_host Smart_lang Smart_net Smart_proto Smart_util String
