test/test_lang.ml: Alcotest Fmt Gen List Option Printf QCheck QCheck_alcotest Smart_lang String
