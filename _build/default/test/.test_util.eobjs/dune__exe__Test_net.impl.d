test/test_net.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Smart_measure Smart_net Smart_sim Smart_util
