test/test_proto.ml: Alcotest Array Bytes Float Gen Int32 List QCheck QCheck_alcotest Smart_lang Smart_proto String
