test/test_measure.mli:
