test/test_hostmodel.mli:
