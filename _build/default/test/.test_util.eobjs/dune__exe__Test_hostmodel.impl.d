test/test_hostmodel.ml: Alcotest Float List QCheck QCheck_alcotest Result Smart_host Smart_net Smart_realnet Smart_sim Sys
