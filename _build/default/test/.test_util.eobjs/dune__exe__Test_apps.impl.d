test/test_apps.ml: Alcotest Array List Printf QCheck QCheck_alcotest Smart_apps Smart_host Smart_util
