test/test_realnet.mli:
