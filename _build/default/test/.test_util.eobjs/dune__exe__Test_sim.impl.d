test/test_sim.ml: Alcotest Gen List QCheck QCheck_alcotest Smart_host Smart_net Smart_sim Smart_util
