test/test_measure.ml: Alcotest Array Float List Printf Smart_host Smart_measure Smart_net Smart_util
