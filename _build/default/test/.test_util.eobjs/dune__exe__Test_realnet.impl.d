test/test_realnet.ml: Alcotest Bytes Fun List Printf Result Smart_core Smart_host Smart_proto Smart_realnet String Sys Thread Unix
