(* Tests for the application layer: matrix arithmetic and the blocked
   decomposition, the distributed matmul simulation, and massd. *)

module A = Smart_apps
module H = Smart_host

let rng () = Smart_util.Prng.create ~seed:11

(* ------------------------------------------------------------------ *)
(* Matrix                                                               *)
(* ------------------------------------------------------------------ *)

let test_matrix_identity () =
  let m = A.Matrix.random ~rng:(rng ()) 20 in
  let i = A.Matrix.identity 20 in
  Alcotest.(check bool) "M * I = M" true
    (A.Matrix.equal (A.Matrix.multiply m i) m);
  Alcotest.(check bool) "I * M = M" true
    (A.Matrix.equal (A.Matrix.multiply i m) m)

let test_matrix_known_product () =
  let a = A.Matrix.init 2 (fun ~row ~col -> float_of_int ((row * 2) + col + 1)) in
  (* a = [1 2; 3 4]; a*a = [7 10; 15 22] *)
  let c = A.Matrix.multiply a a in
  Alcotest.(check (float 1e-12)) "c00" 7.0 (A.Matrix.get c ~row:0 ~col:0);
  Alcotest.(check (float 1e-12)) "c01" 10.0 (A.Matrix.get c ~row:0 ~col:1);
  Alcotest.(check (float 1e-12)) "c10" 15.0 (A.Matrix.get c ~row:1 ~col:0);
  Alcotest.(check (float 1e-12)) "c11" 22.0 (A.Matrix.get c ~row:1 ~col:1)

let test_matrix_size_mismatch () =
  Alcotest.(check bool) "mismatch raises" true
    (try
       ignore (A.Matrix.multiply (A.Matrix.create 2) (A.Matrix.create 3));
       false
     with Invalid_argument _ -> true)

let test_blocks_cover_exactly () =
  List.iter
    (fun (n, blk) ->
      let blocks = A.Matrix.blocks ~n ~blk in
      let covered = Array.make_matrix n n 0 in
      List.iter
        (fun (b : A.Matrix.block) ->
          for i = b.A.Matrix.row0 to b.A.Matrix.row0 + b.A.Matrix.rows - 1 do
            for j = b.A.Matrix.col0 to b.A.Matrix.col0 + b.A.Matrix.cols - 1 do
              covered.(i).(j) <- covered.(i).(j) + 1
            done
          done)
        blocks;
      Array.iter
        (Array.iter (fun c ->
             Alcotest.(check int) "each cell exactly once" 1 c))
        covered)
    [ (10, 3); (12, 4); (7, 7); (5, 1) ]

let test_blocked_equals_plain () =
  let a = A.Matrix.random ~rng:(rng ()) 30 in
  let b = A.Matrix.random ~rng:(rng ()) 30 in
  let plain = A.Matrix.multiply a b in
  List.iter
    (fun blk ->
      Alcotest.(check bool)
        (Printf.sprintf "blk=%d" blk)
        true
        (A.Matrix.equal ~eps:1e-9 (A.Matrix.multiply_blocked a b ~blk) plain))
    [ 1; 7; 10; 30 ]

let test_task_accounting () =
  let blocks = A.Matrix.blocks ~n:1500 ~blk:200 in
  (* 8 per side, 64 blocks; edge blocks are 100 wide *)
  Alcotest.(check int) "64 tasks" 64 (List.length blocks);
  let total_ops =
    List.fold_left (fun acc b -> acc + A.Matrix.task_ops ~n:1500 b) 0 blocks
  in
  Alcotest.(check int) "ops sum to n^3" (1500 * 1500 * 1500) total_ops;
  let total_out =
    List.fold_left (fun acc b -> acc + A.Matrix.task_output_bytes b) 0 blocks
  in
  Alcotest.(check int) "result bytes = n^2 doubles" (1500 * 1500 * 8) total_out

let prop_blocked_equals_plain =
  QCheck.Test.make ~name:"blocked multiplication equals plain" ~count:50
    QCheck.(pair (int_range 1 20) (int_range 1 20))
    (fun (n, blk) ->
      let blk = min blk n in
      let r = Smart_util.Prng.create ~seed:(n * 31 + blk) in
      let a = A.Matrix.random ~rng:r n in
      let b = A.Matrix.random ~rng:r n in
      A.Matrix.equal ~eps:1e-9
        (A.Matrix.multiply_blocked a b ~blk)
        (A.Matrix.multiply a b))

(* ------------------------------------------------------------------ *)
(* Distributed matmul                                                   *)
(* ------------------------------------------------------------------ *)

let run_matmul ?(n = 600) ?(blk = 200) workers =
  let c = H.Testbed.icpp2005 () in
  let resolve = H.Cluster.resolve_exn c in
  (c, A.Matmul.run c ~master:(resolve "sagit")
        ~workers:(List.map resolve workers) ~n ~blk)

let test_matmul_all_tasks_done () =
  let _, r = run_matmul [ "dalmatian"; "dione" ] in
  Alcotest.(check int) "9 tasks for 600/200" 9 r.A.Matmul.tasks;
  let done_total =
    List.fold_left (fun acc w -> acc + w.A.Matmul.tasks_done) 0
      r.A.Matmul.workers
  in
  Alcotest.(check int) "all tasks completed" 9 done_total;
  Alcotest.(check bool) "positive makespan" true (r.A.Matmul.makespan > 0.0)

let test_matmul_fast_beats_slow () =
  let _, fast = run_matmul [ "dalmatian"; "dione" ] in
  let _, slow = run_matmul [ "telesto"; "mimas" ] in
  Alcotest.(check bool) "fast pair wins" true
    (fast.A.Matmul.makespan < slow.A.Matmul.makespan)

let test_matmul_more_workers_faster () =
  let _, two = run_matmul ~n:1200 [ "helene"; "phoebe" ] in
  let _, four = run_matmul ~n:1200 [ "helene"; "phoebe"; "calypso"; "mimas" ] in
  Alcotest.(check bool) "four beat two" true
    (four.A.Matmul.makespan < two.A.Matmul.makespan)

let test_matmul_loaded_worker_slower () =
  let c = H.Testbed.icpp2005 () in
  let resolve = H.Cluster.resolve_exn c in
  let node = resolve "helene" in
  ignore
    (H.Machine.add_workload (H.Cluster.machine c node) ~now:0.0
       (H.Machine.cpu_hog ~demand:1.0));
  let loaded =
    A.Matmul.run c ~master:(resolve "sagit") ~workers:[ node ] ~n:600 ~blk:200
  in
  let _, idle = run_matmul ~n:600 [ "helene" ] in
  Alcotest.(check bool) "competing load halves the rate" true
    (loaded.A.Matmul.makespan > 1.6 *. idle.A.Matmul.makespan)

let test_matmul_self_scheduling_balance () =
  (* a fast and a slow worker: the fast one must take more tasks *)
  let _, r = run_matmul ~n:1200 ~blk:200 [ "dalmatian"; "telesto" ] in
  let tasks name =
    (List.find (fun w -> w.A.Matmul.host = name) r.A.Matmul.workers)
      .A.Matmul.tasks_done
  in
  Alcotest.(check bool) "fast worker does more" true
    (tasks "dalmatian" > tasks "telesto")

let test_matmul_load_visible_during_run () =
  (* during the computation the worker machine shows load *)
  let c = H.Testbed.icpp2005 () in
  let resolve = H.Cluster.resolve_exn c in
  let node = resolve "dione" in
  let machine = H.Cluster.machine c node in
  ignore
    (A.Matmul.run c ~master:(resolve "sagit") ~workers:[ node ] ~n:1000
       ~blk:250);
  (* after the run the serving job is removed, but jiffies accumulated *)
  Alcotest.(check bool) "busy jiffies recorded" true
    (machine.H.Machine.jiffies_user > 0.0);
  Alcotest.(check (float 1e-6)) "job cleaned up" 0.0
    (H.Machine.cpu_demand machine)

let test_matmul_local_time_fig52_shape () =
  let c = H.Testbed.icpp2005 () in
  let t name =
    A.Matmul.local_time
      ~machine:(H.Cluster.machine c (H.Cluster.resolve_exn c name))
      ~n:1500
  in
  Alcotest.(check bool) "P4-2.4 fastest" true (t "dalmatian" < t "sagit");
  Alcotest.(check bool) "P3-866 beats P4-1.7" true (t "sagit" < t "helene");
  Alcotest.(check bool) "P4-1.6 slowest" true (t "telesto" > t "pandora-x")

(* ------------------------------------------------------------------ *)
(* Massd                                                                *)
(* ------------------------------------------------------------------ *)

let shaped_cluster rates =
  let c = H.Testbed.icpp2005 () in
  List.iter
    (fun (host, mbps) ->
      ignore
        (H.Cluster.shape_access c
           ~node:(H.Cluster.resolve_exn c host)
           ~rate_bytes_per_sec:
             (Some (Smart_util.Units.mbps_to_bytes_per_sec mbps))))
    rates;
  c

let test_massd_single_server_rate () =
  let c = shaped_cluster [ ("lhost", 8.0) ] in
  let resolve = H.Cluster.resolve_exn c in
  let r =
    A.Massd.run c ~client:(resolve "sagit") ~servers:[ resolve "lhost" ]
      ~data_kb:5000 ~blk_kb:100
  in
  let mbps = Smart_util.Units.bytes_per_sec_to_mbps r.A.Massd.throughput in
  Alcotest.(check bool) "throughput tracks shaper" true
    (mbps > 7.0 && mbps < 8.2);
  Alcotest.(check int) "bytes accounted" (5000 * 1024) r.A.Massd.bytes_total

let test_massd_parallel_additive () =
  let c = shaped_cluster [ ("lhost", 4.0); ("mimas", 4.0) ] in
  let resolve = H.Cluster.resolve_exn c in
  let r =
    A.Massd.run c ~client:(resolve "sagit")
      ~servers:[ resolve "lhost"; resolve "mimas" ]
      ~data_kb:5000 ~blk_kb:100
  in
  let mbps = Smart_util.Units.bytes_per_sec_to_mbps r.A.Massd.throughput in
  Alcotest.(check bool) "two 4 Mbps servers ~ 8 Mbps" true
    (mbps > 7.0 && mbps < 8.4)

let test_massd_fast_server_carries_more () =
  let c = shaped_cluster [ ("lhost", 8.0); ("pandora-x", 1.0) ] in
  let resolve = H.Cluster.resolve_exn c in
  let r =
    A.Massd.run c ~client:(resolve "sagit")
      ~servers:[ resolve "lhost"; resolve "pandora-x" ]
      ~data_kb:5000 ~blk_kb:100
  in
  let blocks name =
    (List.find
       (fun (s : A.Massd.server_stats) -> s.A.Massd.host = name)
       r.A.Massd.servers)
      .A.Massd.blocks
  in
  Alcotest.(check bool) "fast server took more blocks" true
    (blocks "lhost" > 4 * blocks "pandora-x");
  Alcotest.(check int) "all 50 blocks" 50
    (blocks "lhost" + blocks "pandora-x")

let test_massd_block_remainder () =
  let c = shaped_cluster [ ("lhost", 8.0) ] in
  let resolve = H.Cluster.resolve_exn c in
  (* 1050 KB in 100 KB blocks: 11 blocks, last one 50 KB *)
  let r =
    A.Massd.run c ~client:(resolve "sagit") ~servers:[ resolve "lhost" ]
      ~data_kb:1050 ~blk_kb:100
  in
  let total =
    List.fold_left (fun acc s -> acc + s.A.Massd.bytes) 0 r.A.Massd.servers
  in
  Alcotest.(check int) "exact bytes downloaded" (1050 * 1024) total

let test_massd_failover () =
  (* the fault-tolerance extension: a server dies mid-download, its
     in-flight block is requeued, the survivor finishes the whole file *)
  let c = shaped_cluster [ ("lhost", 4.0); ("mimas", 4.0) ] in
  let resolve = H.Cluster.resolve_exn c in
  let r =
    A.Massd.run c
      ~failures:[ { A.Massd.host = "mimas"; at = 2.0 } ]
      ~client:(resolve "sagit")
      ~servers:[ resolve "lhost"; resolve "mimas" ]
      ~data_kb:4000 ~blk_kb:100
  in
  let bytes name =
    (List.find
       (fun (s : A.Massd.server_stats) -> s.A.Massd.host = name)
       r.A.Massd.servers)
      .A.Massd.bytes
  in
  Alcotest.(check int) "every byte still delivered" (4000 * 1024)
    (bytes "lhost" + bytes "mimas");
  Alcotest.(check bool) "survivor carried most of it" true
    (bytes "lhost" > 3 * bytes "mimas");
  (* compare with an undisturbed run: the failure must cost time *)
  let c2 = shaped_cluster [ ("lhost", 4.0); ("mimas", 4.0) ] in
  let resolve2 = H.Cluster.resolve_exn c2 in
  let healthy =
    A.Massd.run c2 ~client:(resolve2 "sagit")
      ~servers:[ resolve2 "lhost"; resolve2 "mimas" ]
      ~data_kb:4000 ~blk_kb:100
  in
  Alcotest.(check bool) "failure costs throughput" true
    (r.A.Massd.elapsed > healthy.A.Massd.elapsed)

let test_massd_all_servers_die () =
  let c = shaped_cluster [ ("lhost", 4.0) ] in
  let resolve = H.Cluster.resolve_exn c in
  let r =
    A.Massd.run c
      ~failures:[ { A.Massd.host = "lhost"; at = 1.0 } ]
      ~client:(resolve "sagit")
      ~servers:[ resolve "lhost" ]
      ~data_kb:50000 ~blk_kb:100
  in
  (* the run terminates (rather than hanging) with a partial download *)
  Alcotest.(check bool) "partial download" true
    (List.fold_left (fun acc s -> acc + s.A.Massd.bytes) 0 r.A.Massd.servers
    < 50000 * 1024)

let test_massd_failure_unknown_host () =
  let c = shaped_cluster [] in
  let resolve = H.Cluster.resolve_exn c in
  Alcotest.(check bool) "unknown failure host rejected" true
    (try
       ignore
         (A.Massd.run c
            ~failures:[ { A.Massd.host = "nope"; at = 1.0 } ]
            ~client:(resolve "sagit")
            ~servers:[ resolve "lhost" ]
            ~data_kb:100 ~blk_kb:10);
       false
     with Invalid_argument _ -> true)

let test_massd_bad_args () =
  let c = H.Testbed.icpp2005 () in
  let resolve = H.Cluster.resolve_exn c in
  Alcotest.(check bool) "no servers" true
    (try
       ignore (A.Massd.run c ~client:(resolve "sagit") ~servers:[] ~data_kb:1 ~blk_kb:1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad sizes" true
    (try
       ignore
         (A.Massd.run c ~client:(resolve "sagit")
            ~servers:[ resolve "lhost" ] ~data_kb:0 ~blk_kb:1);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "smart_apps"
    [
      ( "matrix",
        [
          Alcotest.test_case "identity" `Quick test_matrix_identity;
          Alcotest.test_case "known product" `Quick test_matrix_known_product;
          Alcotest.test_case "size mismatch" `Quick test_matrix_size_mismatch;
          Alcotest.test_case "blocks cover exactly" `Quick
            test_blocks_cover_exactly;
          Alcotest.test_case "blocked = plain" `Quick test_blocked_equals_plain;
          Alcotest.test_case "task accounting" `Quick test_task_accounting;
        ] );
      ( "matmul",
        [
          Alcotest.test_case "all tasks done" `Quick test_matmul_all_tasks_done;
          Alcotest.test_case "fast beats slow" `Quick test_matmul_fast_beats_slow;
          Alcotest.test_case "more workers faster" `Quick
            test_matmul_more_workers_faster;
          Alcotest.test_case "loaded worker slower" `Quick
            test_matmul_loaded_worker_slower;
          Alcotest.test_case "self-scheduling balance" `Quick
            test_matmul_self_scheduling_balance;
          Alcotest.test_case "load cleanup" `Quick
            test_matmul_load_visible_during_run;
          Alcotest.test_case "Fig 5.2 local times" `Quick
            test_matmul_local_time_fig52_shape;
        ] );
      ( "massd",
        [
          Alcotest.test_case "single server rate" `Quick
            test_massd_single_server_rate;
          Alcotest.test_case "parallel additive" `Quick
            test_massd_parallel_additive;
          Alcotest.test_case "fast carries more" `Quick
            test_massd_fast_server_carries_more;
          Alcotest.test_case "block remainder" `Quick test_massd_block_remainder;
          Alcotest.test_case "failover requeues blocks" `Quick
            test_massd_failover;
          Alcotest.test_case "all servers die" `Quick test_massd_all_servers_die;
          Alcotest.test_case "failure host validated" `Quick
            test_massd_failure_unknown_host;
          Alcotest.test_case "bad arguments" `Quick test_massd_bad_args;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_blocked_equals_plain ] );
    ]
