(* Tests for the network simulator: topology/routing, fragmentation,
   link service model, token-bucket shaper, max-min fair sharing, fluid
   flows, UDP/ICMP delivery. *)

module Engine = Smart_sim.Engine
module Net = Smart_net

let lan =
  {
    Net.Link.capacity = 12.5e6;  (* 100 Mbps *)
    prop_delay = 100e-6;
    jitter = 0.0;
    loss = 0.0;
  }

(* a -- r -- b chain *)
let three_node_chain () =
  let topo = Net.Topology.create () in
  let a = Net.Topology.add_node topo ~name:"a" ~ip:"10.0.0.1" in
  let r = Net.Topology.add_node topo ~name:"r" ~ip:"10.0.0.2" in
  let b = Net.Topology.add_node topo ~name:"b" ~ip:"10.0.0.3" in
  ignore (Net.Topology.add_link topo ~a ~b:r lan);
  ignore (Net.Topology.add_link topo ~a:r ~b lan);
  (topo, a, r, b)

(* ------------------------------------------------------------------ *)
(* Topology and routing                                                 *)
(* ------------------------------------------------------------------ *)

let test_resolve () =
  let topo, a, _, _ = three_node_chain () in
  Alcotest.(check (option int)) "by name" (Some a) (Net.Topology.resolve topo "a");
  Alcotest.(check (option int))
    "by ip" (Some a)
    (Net.Topology.resolve topo "10.0.0.1");
  Alcotest.(check (option int)) "unknown" None (Net.Topology.resolve topo "zz")

let test_duplicate_node () =
  let topo, _, _, _ = three_node_chain () in
  Alcotest.check_raises "dup name"
    (Invalid_argument "Topology.add_node: duplicate name a") (fun () ->
      ignore (Net.Topology.add_node topo ~name:"a" ~ip:"10.9.9.9"))

let test_path_chain () =
  let topo, a, r, b = three_node_chain () in
  let path = Net.Topology.path topo ~src:a ~dst:b in
  Alcotest.(check int) "two hops" 2 (List.length path);
  (match path with
  | [ c1; c2 ] ->
    Alcotest.(check int) "hop1 src" a c1.Net.Link.src;
    Alcotest.(check int) "hop1 dst" r c1.Net.Link.dst;
    Alcotest.(check int) "hop2 dst" b c2.Net.Link.dst
  | _ -> Alcotest.fail "bad path");
  Alcotest.(check (list int)) "self path empty" []
    (List.map (fun (c : Net.Link.t) -> c.Net.Link.id)
       (Net.Topology.path topo ~src:a ~dst:a))

let test_no_route () =
  let topo = Net.Topology.create () in
  let a = Net.Topology.add_node topo ~name:"a" ~ip:"10.0.0.1" in
  let b = Net.Topology.add_node topo ~name:"b" ~ip:"10.0.0.2" in
  (try
     ignore (Net.Topology.path topo ~src:a ~dst:b);
     Alcotest.fail "expected No_route"
   with Net.Topology.No_route { src; dst } ->
     Alcotest.(check int) "src" a src;
     Alcotest.(check int) "dst" b dst);
  Alcotest.(check bool) "next_hop none" true
    (Net.Topology.next_hop topo ~src:a ~dst:b = None)

let test_shortest_path () =
  (* square with a diagonal shortcut: a-b-d and a-c-d, plus direct a-d *)
  let topo = Net.Topology.create () in
  let a = Net.Topology.add_node topo ~name:"a" ~ip:"1.0.0.1" in
  let b = Net.Topology.add_node topo ~name:"b" ~ip:"1.0.0.2" in
  let c = Net.Topology.add_node topo ~name:"c" ~ip:"1.0.0.3" in
  let d = Net.Topology.add_node topo ~name:"d" ~ip:"1.0.0.4" in
  ignore (Net.Topology.add_link topo ~a ~b lan);
  ignore (Net.Topology.add_link topo ~a:b ~b:d lan);
  ignore (Net.Topology.add_link topo ~a ~b:c lan);
  ignore (Net.Topology.add_link topo ~a:c ~b:d lan);
  ignore (Net.Topology.add_link topo ~a ~b:d lan);
  Alcotest.(check int) "direct link wins" 1
    (List.length (Net.Topology.path topo ~src:a ~dst:d))

(* ------------------------------------------------------------------ *)
(* Fragmentation                                                        *)
(* ------------------------------------------------------------------ *)

let test_fragment_sizes () =
  (* 1480 data bytes per fragment at MTU 1500 *)
  Alcotest.(check (list int)) "small fits"
    [ 128 + 20 ]
    (Net.Netstack.fragment_sizes ~mtu:1500 ~payload:128);
  Alcotest.(check (list int)) "exactly one MTU"
    [ 1500 ]
    (Net.Netstack.fragment_sizes ~mtu:1500 ~payload:1480);
  Alcotest.(check (list int)) "split"
    [ 1500; 21 ]
    (Net.Netstack.fragment_sizes ~mtu:1500 ~payload:1481);
  Alcotest.(check int) "4000 B -> 3 fragments" 3
    (List.length (Net.Netstack.fragment_sizes ~mtu:1500 ~payload:4000))

let prop_fragments_conserve_bytes =
  QCheck.Test.make ~name:"fragmentation conserves payload bytes" ~count:300
    QCheck.(pair (int_range 1 20000) (int_range 100 9000))
    (fun (payload, mtu) ->
      let frags = Net.Netstack.fragment_sizes ~mtu ~payload in
      let data = List.fold_left (fun acc f -> acc + f - 20) 0 frags in
      data = payload
      && List.for_all (fun f -> f <= mtu && f > 20) frags)

(* ------------------------------------------------------------------ *)
(* Link service model                                                   *)
(* ------------------------------------------------------------------ *)

let test_link_serialization () =
  let rng = Smart_util.Prng.create ~seed:1 in
  let link = Net.Link.create ~id:0 ~src:0 ~dst:1 lan in
  (* 12500 bytes at 12.5 MB/s = 1 ms + 0.1 ms prop *)
  match Net.Link.transmit link ~rng ~now:0.0 ~size:12500 with
  | Some arrival ->
    Alcotest.(check (float 1e-9)) "store-and-forward" 0.0011 arrival
  | None -> Alcotest.fail "no loss expected"

let test_link_fifo () =
  let rng = Smart_util.Prng.create ~seed:1 in
  let link = Net.Link.create ~id:0 ~src:0 ~dst:1 lan in
  let a1 = Net.Link.transmit link ~rng ~now:0.0 ~size:12500 in
  let a2 = Net.Link.transmit link ~rng ~now:0.0 ~size:12500 in
  match (a1, a2) with
  | Some a1, Some a2 ->
    Alcotest.(check (float 1e-9)) "second queues behind first" 0.001
      (a2 -. a1)
  | _ -> Alcotest.fail "no loss expected"

let test_link_residual_under_load () =
  let rng = Smart_util.Prng.create ~seed:1 in
  let link = Net.Link.create ~id:0 ~src:0 ~dst:1 lan in
  Net.Link.set_cross_load link 6.25e6;  (* half the capacity *)
  Alcotest.(check (float 1.0)) "residual half" 6.25e6
    (Net.Link.residual_rate link);
  match Net.Link.transmit link ~rng ~now:0.0 ~size:6250 with
  | Some arrival ->
    (* 6250 B at 6.25 MB/s = 1 ms *)
    Alcotest.(check (float 1e-9)) "serialised at residual" 0.0011 arrival
  | None -> Alcotest.fail "no loss expected"

let test_link_loss () =
  let rng = Smart_util.Prng.create ~seed:1 in
  let link =
    Net.Link.create ~id:0 ~src:0 ~dst:1 { lan with Net.Link.loss = 1.0 }
  in
  Alcotest.(check bool) "always lost" true
    (Net.Link.transmit link ~rng ~now:0.0 ~size:100 = None)

let test_capacity_for_flows_shaped () =
  let link = Net.Link.create ~id:0 ~src:0 ~dst:1 lan in
  Net.Link.set_shaper link (Some (Net.Shaper.create ~rate:1e6 ()));
  Alcotest.(check (float 1.0)) "clamped to shaper" 1e6
    (Net.Link.capacity_for_flows link);
  (* but the packet-plane physical rate is unchanged *)
  Alcotest.(check (float 1.0)) "physical rate unshaped" 12.5e6
    (Net.Link.residual_rate link)

(* ------------------------------------------------------------------ *)
(* Shaper                                                               *)
(* ------------------------------------------------------------------ *)

let test_shaper_burst_then_drain () =
  let s = Net.Shaper.create ~burst:1000.0 ~rate:1000.0 () in
  (* first 1000 bytes ride the burst *)
  Alcotest.(check (float 1e-9)) "burst free" 0.0
    (Net.Shaper.admit s ~now:0.0 ~size:1000);
  (* next 500 wait 0.5 s at 1000 B/s *)
  Alcotest.(check (float 1e-9)) "debt delays" 0.5
    (Net.Shaper.admit s ~now:0.0 ~size:500);
  (* after the wait the bucket is empty again: another 100 B waits 0.1 s *)
  Alcotest.(check (float 1e-9)) "sequential debt" 0.6
    (Net.Shaper.admit s ~now:0.5 ~size:100)

let test_shaper_refill_cap () =
  let s = Net.Shaper.create ~burst:1000.0 ~rate:1000.0 () in
  ignore (Net.Shaper.admit s ~now:0.0 ~size:1000);
  (* long idle: bucket refills but never beyond the burst *)
  Alcotest.(check (float 1e-9)) "capped refill" 100.0
    (Net.Shaper.admit s ~now:100.0 ~size:1000);
  Alcotest.(check (float 1e-9)) "empty right after" 100.5
    (Net.Shaper.admit s ~now:100.0 ~size:500)

let test_shaper_long_run_rate () =
  let s = Net.Shaper.create ~burst:1500.0 ~rate:1.0e5 () in
  (* push 1 MB through; total time must approach 10 s (rate 100 KB/s) *)
  let now = ref 0.0 in
  for _ = 1 to 1000 do
    now := Net.Shaper.admit s ~now:!now ~size:1000
  done;
  Alcotest.(check bool) "long-run rate" true
    (!now > 9.9 && !now < 10.1)

(* ------------------------------------------------------------------ *)
(* Fairshare                                                            *)
(* ------------------------------------------------------------------ *)

let test_fairshare_single_link () =
  let rates =
    Net.Fairshare.rates ~capacities:[| 10.0 |]
      ~flows:[| [ 0 ]; [ 0 ]; [ 0 ]; [ 0 ] |]
  in
  Array.iter (fun r -> Alcotest.(check (float 1e-9)) "equal share" 2.5 r) rates

let test_fairshare_water_filling () =
  (* classic example: link0 cap 1 shared by f0,f1; link1 cap 10 carries
     f1 only beyond its bottleneck -> f0 = 0.5, f1 = 0.5 *)
  let rates =
    Net.Fairshare.rates ~capacities:[| 1.0; 10.0 |]
      ~flows:[| [ 0 ]; [ 0; 1 ] |]
  in
  Alcotest.(check (float 1e-9)) "f0" 0.5 rates.(0);
  Alcotest.(check (float 1e-9)) "f1" 0.5 rates.(1)

let test_fairshare_unequal_bottlenecks () =
  (* f0 crosses tight link (cap 2) alone after sharing; f1 crosses wide
     link: f0 bottlenecked at 1 (sharing cap-2 link), f1 gets rest of
     wide link *)
  let rates =
    Net.Fairshare.rates ~capacities:[| 2.0; 10.0 |]
      ~flows:[| [ 0 ]; [ 0; 1 ]; [ 1 ] |]
  in
  Alcotest.(check (float 1e-9)) "shared tight" 1.0 rates.(0);
  Alcotest.(check (float 1e-9)) "shared tight 2" 1.0 rates.(1);
  Alcotest.(check (float 1e-9)) "wide remainder" 9.0 rates.(2)

let test_fairshare_empty_path () =
  let rates = Net.Fairshare.rates ~capacities:[| 1.0 |] ~flows:[| []; [ 0 ] |] in
  Alcotest.(check (float 1e-9)) "unconstrained" Net.Fairshare.unconstrained_rate
    rates.(0);
  Alcotest.(check (float 1e-9)) "constrained" 1.0 rates.(1)

let prop_fairshare_feasible =
  QCheck.Test.make ~name:"fairshare never oversubscribes a link" ~count:300
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 8) (float_range 1.0 100.0))
        (list_of_size Gen.(int_range 1 12) (list_of_size Gen.(int_range 0 4) (int_range 0 7))))
    (fun (capacities, flow_lists) ->
      let nlinks = Array.length capacities in
      let flows =
        Array.of_list
          (List.map
             (fun ls -> List.sort_uniq compare (List.filter (fun l -> l < nlinks) ls))
             flow_lists)
      in
      let rates = Net.Fairshare.rates ~capacities ~flows in
      let load = Array.make nlinks 0.0 in
      Array.iteri
        (fun i links -> List.iter (fun l -> load.(l) <- load.(l) +. rates.(i)) links)
        flows;
      Array.for_all (fun r -> r >= 0.0) rates
      && Array.for_all2 (fun l c -> l <= c +. 1e-6) load capacities)

let prop_fairshare_bottleneck =
  QCheck.Test.make ~name:"every constrained flow has a saturated link"
    ~count:200
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 6) (float_range 1.0 50.0))
        (list_of_size Gen.(int_range 1 8) (list_of_size Gen.(int_range 1 3) (int_range 0 5))))
    (fun (capacities, flow_lists) ->
      let nlinks = Array.length capacities in
      let flows =
        Array.of_list
          (List.map
             (fun ls ->
               match List.sort_uniq compare (List.filter (fun l -> l < nlinks) ls) with
               | [] -> [ 0 ]
               | ls -> ls)
             flow_lists)
      in
      let rates = Net.Fairshare.rates ~capacities ~flows in
      let load = Array.make nlinks 0.0 in
      Array.iteri
        (fun i links -> List.iter (fun l -> load.(l) <- load.(l) +. rates.(i)) links)
        flows;
      (* max-min: each flow crosses at least one nearly-saturated link *)
      Array.for_all
        (fun links ->
          List.exists (fun l -> load.(l) >= capacities.(l) -. 1e-6) links)
        flows)

(* ------------------------------------------------------------------ *)
(* Flows                                                                *)
(* ------------------------------------------------------------------ *)

let flow_world () =
  let engine = Engine.create () in
  let topo, a, r, b = three_node_chain () in
  let flows = Net.Flow.create ~engine ~topo () in
  (engine, topo, flows, a, r, b)

let test_flow_completion_time () =
  let engine, _, flows, a, _, b = flow_world () in
  let done_at = ref nan in
  ignore
    (Net.Flow.start flows ~src:a ~dst:b ~bytes:12_500_000
       ~on_complete:(fun stats ->
         done_at := stats.Net.Flow.finished_at));
  Engine.run_until_idle engine;
  (* 12.5 MB at 12.5 MB/s bottleneck = 1 s *)
  Alcotest.(check bool) "completes at ~1 s" true
    (Float.abs (!done_at -. 1.0) < 1e-6)

let test_flow_sharing () =
  let engine, _, flows, a, _, b = flow_world () in
  let finished = ref [] in
  for _ = 1 to 2 do
    ignore
      (Net.Flow.start flows ~src:a ~dst:b ~bytes:12_500_000
         ~on_complete:(fun stats ->
           finished := stats.Net.Flow.finished_at :: !finished))
  done;
  Engine.run_until_idle engine;
  (* two equal flows share the link: both complete at ~2 s *)
  List.iter
    (fun at -> Alcotest.(check bool) "both at ~2 s" true (Float.abs (at -. 2.0) < 1e-6))
    !finished

let test_flow_rate_rises_after_completion () =
  let engine, _, flows, a, _, b = flow_world () in
  let short_done = ref nan and long_done = ref nan in
  ignore
    (Net.Flow.start flows ~src:a ~dst:b ~bytes:6_250_000
       ~on_complete:(fun s -> short_done := s.Net.Flow.finished_at));
  ignore
    (Net.Flow.start flows ~src:a ~dst:b ~bytes:12_500_000
       ~on_complete:(fun s -> long_done := s.Net.Flow.finished_at));
  Engine.run_until_idle engine;
  (* short: 6.25 MB at 6.25 MB/s = 1 s; long: 6.25 MB in the first second
     then 6.25 MB at full rate = 1.5 s total *)
  Alcotest.(check bool) "short at 1 s" true (Float.abs (!short_done -. 1.0) < 1e-6);
  Alcotest.(check bool) "long at 1.5 s" true (Float.abs (!long_done -. 1.5) < 1e-6)

let test_flow_publishes_load () =
  let engine, topo, flows, a, _, b = flow_world () in
  ignore
    (Net.Flow.start flows ~src:a ~dst:b ~bytes:125_000_000
       ~on_complete:(fun _ -> ()));
  Engine.run engine ~until:0.1;
  let first_hop = List.hd (Net.Topology.path topo ~src:a ~dst:b) in
  Alcotest.(check (float 1.0)) "flow load visible to packets" 12.5e6
    first_hop.Net.Link.flow_load;
  Alcotest.(check int) "active" 1 (Net.Flow.active_count flows)

let test_flow_abort () =
  let engine, _, flows, a, _, b = flow_world () in
  let fired = ref false in
  let id =
    Net.Flow.start flows ~src:a ~dst:b ~bytes:125_000_000
      ~on_complete:(fun _ -> fired := true)
  in
  Engine.run engine ~until:0.1;
  Alcotest.(check bool) "abort finds it" true (Net.Flow.abort flows ~flow_id:id);
  Alcotest.(check bool) "gone" false (Net.Flow.abort flows ~flow_id:id);
  Engine.run_until_idle engine;
  Alcotest.(check bool) "callback suppressed" false !fired

let test_flow_chained_callbacks () =
  let engine, _, flows, a, _, b = flow_world () in
  let second_done = ref nan in
  ignore
    (Net.Flow.start flows ~src:a ~dst:b ~bytes:12_500_000
       ~on_complete:(fun _ ->
         ignore
           (Net.Flow.start flows ~src:a ~dst:b ~bytes:12_500_000
              ~on_complete:(fun s -> second_done := s.Net.Flow.finished_at))));
  Engine.run_until_idle engine;
  Alcotest.(check bool) "sequential transfers" true
    (Float.abs (!second_done -. 2.0) < 1e-6)

let test_flow_local () =
  let engine, _, flows, a, _, _ = flow_world () in
  let done_ = ref false in
  ignore
    (Net.Flow.start flows ~src:a ~dst:a ~bytes:1_000_000
       ~on_complete:(fun _ -> done_ := true));
  Engine.run_until_idle engine;
  Alcotest.(check bool) "local transfer completes" true !done_

let prop_flow_conservation =
  QCheck.Test.make ~name:"every started flow delivers exactly its bytes"
    ~count:60
    QCheck.(list_of_size Gen.(int_range 1 12) (int_range 1 5_000_000))
    (fun sizes ->
      let engine = Engine.create () in
      let topo, a, _, b = three_node_chain () in
      let flows = Net.Flow.create ~engine ~topo () in
      let delivered = ref 0.0 in
      let completions = ref 0 in
      Net.Flow.set_progress_hook flows
        (Some (fun ~src:_ ~dst:_ bytes -> delivered := !delivered +. bytes));
      List.iter
        (fun bytes ->
          ignore
            (Net.Flow.start flows ~src:a ~dst:b ~bytes
               ~on_complete:(fun stats ->
                 incr completions;
                 if stats.Net.Flow.bytes <> bytes then completions := -1000)))
        sizes;
      Engine.run_until_idle engine;
      (* progress-hook bytes match the requested total within the banked
         rounding (one byte per flow), and every flow completed once *)
      let total = float_of_int (List.fold_left ( + ) 0 sizes) in
      !completions = List.length sizes
      && Float.abs (!delivered -. total) <= float_of_int (List.length sizes))

(* ------------------------------------------------------------------ *)
(* UDP / ICMP delivery                                                  *)
(* ------------------------------------------------------------------ *)

let stack_world () =
  let engine = Engine.create () in
  let rng = Smart_util.Prng.create ~seed:5 in
  let topo, a, r, b = three_node_chain () in
  let stack = Net.Netstack.create ~engine ~topo ~rng () in
  (engine, stack, a, r, b)

let test_udp_delivery () =
  let engine, stack, a, _, b = stack_world () in
  let got = ref None in
  Net.Netstack.listen_udp stack ~node:b ~port:7 (fun ~now pkt ->
      got := Some (now, pkt.Net.Packet.payload));
  ignore
    (Net.Netstack.send_udp stack ~src:a ~dst:b ~sport:9 ~dport:7 ~size:11
       ~payload:"hello world");
  Engine.run engine ~until:1.0;
  match !got with
  | Some (at, payload) ->
    Alcotest.(check string) "payload intact" "hello world" payload;
    Alcotest.(check bool) "took transit time" true (at > 0.0002 && at < 0.01)
  | None -> Alcotest.fail "datagram not delivered"

let test_icmp_port_unreachable () =
  let engine, stack, a, _, b = stack_world () in
  let got = ref None in
  Net.Netstack.on_icmp stack ~node:a (fun ~now:_ pkt ->
      got := Some pkt.Net.Packet.proto);
  let id =
    Net.Netstack.send_udp stack ~src:a ~dst:b ~sport:9 ~dport:33434 ~size:64
  in
  Engine.run engine ~until:1.0;
  match !got with
  | Some (Net.Packet.Icmp (Net.Packet.Port_unreachable { orig_id; orig_dport }))
    ->
    Alcotest.(check int) "original id echoed" id orig_id;
    Alcotest.(check int) "original dport" 33434 orig_dport
  | _ -> Alcotest.fail "expected port unreachable"

let test_icmp_echo () =
  let engine, stack, a, _, b = stack_world () in
  let got = ref None in
  Net.Netstack.on_icmp stack ~node:a (fun ~now:_ pkt ->
      got := Some pkt.Net.Packet.proto);
  ignore (Net.Netstack.send_icmp stack ~src:a ~dst:b (Net.Packet.Echo_request { seq = 7 }));
  Engine.run engine ~until:1.0;
  match !got with
  | Some (Net.Packet.Icmp (Net.Packet.Echo_reply { seq })) ->
    Alcotest.(check int) "seq echoed" 7 seq
  | _ -> Alcotest.fail "expected echo reply"

let test_local_delivery () =
  let engine, stack, a, _, _ = stack_world () in
  let got = ref false in
  Net.Netstack.listen_udp stack ~node:a ~port:7 (fun ~now:_ _ -> got := true);
  ignore (Net.Netstack.send_udp stack ~src:a ~dst:a ~sport:9 ~dport:7 ~size:32);
  Engine.run engine ~until:1.0;
  Alcotest.(check bool) "loopback delivery" true !got

let test_large_datagram_fragments () =
  let engine, stack, a, _, b = stack_world () in
  let count = ref 0 in
  Net.Netstack.listen_udp stack ~node:b ~port:7 (fun ~now:_ _ -> incr count);
  ignore (Net.Netstack.send_udp stack ~src:a ~dst:b ~sport:9 ~dport:7 ~size:6000);
  Engine.run engine ~until:1.0;
  Alcotest.(check int) "reassembled exactly once" 1 !count

let test_byte_hook () =
  let engine, stack, a, _, b = stack_world () in
  let counted = ref 0 in
  Net.Netstack.set_byte_hook stack
    (Some (fun ~src:_ ~dst:_ bytes -> counted := !counted + bytes));
  Net.Netstack.listen_udp stack ~node:b ~port:7 (fun ~now:_ _ -> ());
  ignore (Net.Netstack.send_udp stack ~src:a ~dst:b ~sport:9 ~dport:7 ~size:1000);
  Engine.run engine ~until:1.0;
  (* 1000 + 8 payload over 2 hops with an IP header per fragment *)
  Alcotest.(check int) "wire bytes counted" (2 * (1000 + 8 + 20)) !counted

let test_unlisten () =
  let engine, stack, a, _, b = stack_world () in
  let icmp = ref false in
  Net.Netstack.listen_udp stack ~node:b ~port:7 (fun ~now:_ _ -> ());
  Net.Netstack.unlisten_udp stack ~node:b ~port:7;
  Net.Netstack.on_icmp stack ~node:a (fun ~now:_ _ -> icmp := true);
  ignore (Net.Netstack.send_udp stack ~src:a ~dst:b ~sport:9 ~dport:7 ~size:10);
  Engine.run engine ~until:1.0;
  Alcotest.(check bool) "closed port bounces" true !icmp

(* cross traffic shrinks the residual rate and slows large probes *)
let test_cross_traffic_slows_probes () =
  let _, stack, a, _, b = stack_world () in
  let topo = Net.Netstack.topology stack in
  let rtt () =
    match
      Smart_measure.Rtt_probe.ping ~count:1 ~size:1400 stack ~src:a ~dst:b ()
    with
    | Some r -> r
    | None -> Alcotest.fail "probe lost"
  in
  let quiet = rtt () in
  List.iter
    (fun (chan : Net.Link.t) -> Net.Link.set_cross_load chan (0.9 *. 12.5e6))
    (Net.Topology.path topo ~src:a ~dst:b);
  let loaded = rtt () in
  Alcotest.(check bool) "load raises delay" true (loaded > quiet)

(* the steady generator keeps the load around its mean *)
let test_cross_traffic_generator () =
  let engine, stack, a, _, b = stack_world () in
  let topo = Net.Netstack.topology stack in
  let chan = List.hd (Net.Topology.path topo ~src:a ~dst:b) in
  let gen =
    Net.Cross_traffic.steady ~engine ~rng:(Smart_util.Prng.create ~seed:2)
      ~chan ~mean_load:5e6 ~sigma:1e5 ()
  in
  Engine.run engine ~until:1.0;
  Alcotest.(check bool) "load near mean" true
    (Float.abs (chan.Net.Link.cross_load -. 5e6) < 1e6);
  Net.Cross_traffic.stop gen;
  ignore stack

let () =
  Alcotest.run "smart_net"
    [
      ( "topology",
        [
          Alcotest.test_case "resolve" `Quick test_resolve;
          Alcotest.test_case "duplicate node" `Quick test_duplicate_node;
          Alcotest.test_case "path chain" `Quick test_path_chain;
          Alcotest.test_case "no route" `Quick test_no_route;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
        ] );
      ( "fragmentation",
        [ Alcotest.test_case "sizes" `Quick test_fragment_sizes ] );
      ( "link",
        [
          Alcotest.test_case "serialization" `Quick test_link_serialization;
          Alcotest.test_case "FIFO queueing" `Quick test_link_fifo;
          Alcotest.test_case "residual under load" `Quick
            test_link_residual_under_load;
          Alcotest.test_case "loss" `Quick test_link_loss;
          Alcotest.test_case "shaper clamps flows only" `Quick
            test_capacity_for_flows_shaped;
        ] );
      ( "shaper",
        [
          Alcotest.test_case "burst then drain" `Quick
            test_shaper_burst_then_drain;
          Alcotest.test_case "refill cap" `Quick test_shaper_refill_cap;
          Alcotest.test_case "long-run rate" `Quick test_shaper_long_run_rate;
        ] );
      ( "fairshare",
        [
          Alcotest.test_case "single link" `Quick test_fairshare_single_link;
          Alcotest.test_case "water filling" `Quick test_fairshare_water_filling;
          Alcotest.test_case "unequal bottlenecks" `Quick
            test_fairshare_unequal_bottlenecks;
          Alcotest.test_case "empty path" `Quick test_fairshare_empty_path;
        ] );
      ( "flow",
        [
          Alcotest.test_case "completion time" `Quick test_flow_completion_time;
          Alcotest.test_case "equal sharing" `Quick test_flow_sharing;
          Alcotest.test_case "rate rises after completion" `Quick
            test_flow_rate_rises_after_completion;
          Alcotest.test_case "publishes load" `Quick test_flow_publishes_load;
          Alcotest.test_case "abort" `Quick test_flow_abort;
          Alcotest.test_case "chained callbacks" `Quick
            test_flow_chained_callbacks;
          Alcotest.test_case "node-local" `Quick test_flow_local;
        ] );
      ( "udp/icmp",
        [
          Alcotest.test_case "delivery" `Quick test_udp_delivery;
          Alcotest.test_case "port unreachable" `Quick
            test_icmp_port_unreachable;
          Alcotest.test_case "echo" `Quick test_icmp_echo;
          Alcotest.test_case "loopback" `Quick test_local_delivery;
          Alcotest.test_case "fragment reassembly" `Quick
            test_large_datagram_fragments;
          Alcotest.test_case "byte hook" `Quick test_byte_hook;
          Alcotest.test_case "unlisten bounces" `Quick test_unlisten;
          Alcotest.test_case "cross traffic slows probes" `Quick
            test_cross_traffic_slows_probes;
          Alcotest.test_case "cross traffic generator" `Quick
            test_cross_traffic_generator;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_fragments_conserve_bytes;
            prop_fairshare_feasible;
            prop_fairshare_bottleneck;
            prop_flow_conservation;
          ] );
    ]
