(* Shape tests over the paper-reproduction experiments: the assertions
   encode "who wins and where the crossovers fall", not absolute
   numbers — the contract DESIGN.md §4 states.  Scaled-down parameters
   keep the suite fast; bench/main.exe runs the full versions. *)

module E = Smart_experiments

(* ------------------------------------------------------------------ *)
(* Fig 3.3-3.5                                                          *)
(* ------------------------------------------------------------------ *)

let test_mtu_sweeps_shape () =
  let sweeps = E.Exp_rtt.mtu_sweeps ~mtus:[ 1500; 1000 ] ~max_size:4000 () in
  Alcotest.(check int) "one report per MTU" 2 (List.length sweeps);
  List.iter
    (fun (r : E.Exp_rtt.sweep_report) ->
      match r.E.Exp_rtt.knee with
      | Some k ->
        Alcotest.(check bool) "knee significant" true
          k.Smart_measure.Rtt_probe.significant;
        Alcotest.(check bool) "knee tracks MTU" true
          (Float.abs
             (k.Smart_measure.Rtt_probe.knee_bytes
             -. float_of_int r.E.Exp_rtt.mtu)
          < 200.0)
      | None -> Alcotest.fail "knee not found")
    sweeps

let test_sample_paths_table32 () =
  let reports = E.Exp_rtt.sample_paths ~max_size:3000 ~step:100 () in
  Alcotest.(check int) "six paths" 6 (List.length reports);
  (* WAN paths a/b have much larger pings than LAN paths c/d/e/f *)
  let ping label =
    let r =
      List.find
        (fun (r : E.Exp_rtt.sweep_report) ->
          String.length r.E.Exp_rtt.label > 0 && r.E.Exp_rtt.label.[0] = label)
        reports
    in
    match r.E.Exp_rtt.ping with
    | Some p -> p
    | None -> Alcotest.failf "ping lost on %c" label
  in
  Alcotest.(check bool) "b (CMU) slowest" true (ping 'b' > ping 'a');
  Alcotest.(check bool) "a (APAN) >> c (LAN)" true (ping 'a' > 100.0 *. ping 'c');
  Alcotest.(check bool) "f (loopback) fastest" true (ping 'f' < ping 'e')

(* ------------------------------------------------------------------ *)
(* Table 3.3                                                            *)
(* ------------------------------------------------------------------ *)

let test_bw_table_shape () =
  let r = E.Exp_bw.run ~trials:5 () in
  Alcotest.(check int) "seven groups" 7 (List.length r.E.Exp_bw.groups);
  let avg label =
    (List.find (fun g -> g.E.Exp_bw.label = label) r.E.Exp_bw.groups)
      .E.Exp_bw.avg_bw
  in
  (* sub-MTU groups under-estimate by the Speed_init effect *)
  List.iter
    (fun sub ->
      List.iter
        (fun super ->
          Alcotest.(check bool)
            (Printf.sprintf "%s < %s" sub super)
            true
            (avg sub < 0.5 *. avg super))
        [ "2000~4000"; "4000~6000"; "2000~6000"; "1600~2900" ])
    [ "100~500"; "500~1000"; "100~1000" ];
  (* the thesis's optimal pair lands near the truth *)
  Alcotest.(check bool) "1600~2900 near 95 Mbps" true
    (avg "1600~2900" > 75.0 && avg "1600~2900" < 120.0);
  (* baselines agree *)
  (match r.E.Exp_bw.pipechar_bw with
  | Some bw -> Alcotest.(check bool) "pipechar near truth" true (bw > 70.0 && bw < 130.0)
  | None -> Alcotest.fail "pipechar failed");
  Alcotest.(check bool) "pathload brackets truth" true
    (r.E.Exp_bw.pathload_low < 110.0 && r.E.Exp_bw.pathload_high > 70.0)

(* ------------------------------------------------------------------ *)
(* Table 3.4                                                            *)
(* ------------------------------------------------------------------ *)

let test_netmon_mesh () =
  let r = E.Exp_netmon.run ~trials:3 () in
  Alcotest.(check int) "three monitors" 3 (List.length r.E.Exp_netmon.records);
  List.iter
    (fun (rec_ : Smart_proto.Records.net_record) ->
      Alcotest.(check int) "two peers each" 2
        (List.length rec_.Smart_proto.Records.entries))
    r.E.Exp_netmon.records;
  (* the 1<->3 link (20 Mbps, 11 ms) must read slower and further than
     the 2<->3 link (80 Mbps, 2 ms) from monitor 3's perspective *)
  let m3 =
    List.find
      (fun (rec_ : Smart_proto.Records.net_record) ->
        rec_.Smart_proto.Records.monitor = "netmon-3")
      r.E.Exp_netmon.records
  in
  let entry peer =
    List.find
      (fun (e : Smart_proto.Records.net_entry) ->
        e.Smart_proto.Records.peer = peer)
      m3.Smart_proto.Records.entries
  in
  Alcotest.(check bool) "bw ordering" true
    ((entry "netmon-1").Smart_proto.Records.bandwidth
    < (entry "netmon-2").Smart_proto.Records.bandwidth);
  Alcotest.(check bool) "delay ordering" true
    ((entry "netmon-1").Smart_proto.Records.delay
    > (entry "netmon-2").Smart_proto.Records.delay)

(* ------------------------------------------------------------------ *)
(* Table 4.1                                                            *)
(* ------------------------------------------------------------------ *)

let test_superpi_table () =
  let r = E.Exp_superpi.run () in
  let before = r.E.Exp_superpi.before and after = r.E.Exp_superpi.after in
  Alcotest.(check bool) "used grows" true
    (after.Smart_host.Procfs.used > before.Smart_host.Procfs.used);
  Alcotest.(check bool) "free collapses" true
    (after.Smart_host.Procfs.free < before.Smart_host.Procfs.free / 10);
  Alcotest.(check bool) "buffers shrink" true
    (after.Smart_host.Procfs.buffers < before.Smart_host.Procfs.buffers);
  Alcotest.(check bool) "cache grows" true
    (after.Smart_host.Procfs.cached > before.Smart_host.Procfs.cached)

(* ------------------------------------------------------------------ *)
(* Table 5.2                                                            *)
(* ------------------------------------------------------------------ *)

let test_resource_table () =
  let r = E.Exp_resources.run ~duration:20.0 () in
  Alcotest.(check int) "seven components" 7 (List.length r.E.Exp_resources.rows);
  let row name =
    List.find (fun row -> row.E.Exp_resources.component = name)
      r.E.Exp_resources.rows
  in
  (* the monitor receives all probe traffic: ~11x a single probe *)
  let probe = row "System Probe (each)" in
  let monitor = row "System Monitor" in
  Alcotest.(check bool) "monitor bw ~ 11x probe bw" true
    (monitor.E.Exp_resources.bandwidth_kBps
    > 8.0 *. probe.E.Exp_resources.bandwidth_kBps);
  (* receiver and wizard keep the record set resident *)
  Alcotest.(check bool) "wizard memory > probe memory" true
    ((row "Wizard").E.Exp_resources.memory_bytes
    > probe.E.Exp_resources.memory_bytes);
  Alcotest.(check bool) "every bandwidth sane" true
    (List.for_all
       (fun row ->
         row.E.Exp_resources.bandwidth_kBps >= 0.0
         && row.E.Exp_resources.bandwidth_kBps < 100.0)
       r.E.Exp_resources.rows)

(* ------------------------------------------------------------------ *)
(* Fig 5.2 + Tables 5.3-5.6 (one representative, scaled down)           *)
(* ------------------------------------------------------------------ *)

let test_benchmark_fig52 () =
  let rows = E.Exp_matmul.benchmark ~n:1500 () in
  Alcotest.(check int) "11 machines" 11 (List.length rows);
  let time host =
    (List.find (fun r -> r.E.Exp_matmul.host = host) rows)
      .E.Exp_matmul.seconds
  in
  (* the Fig 5.2 inversion: P3-866 beats all the P4-1.6..1.8 machines *)
  Alcotest.(check bool) "sagit (P3) < helene (P4 1.7)" true
    (time "sagit" < time "helene");
  Alcotest.(check bool) "dalmatian fastest" true
    (List.for_all (fun r -> time "dalmatian" <= r.E.Exp_matmul.seconds) rows)

let test_matmul_table53 () =
  (* Table 5.3 with the real requirement text, full pipeline *)
  let c = E.Exp_matmul.run_setup (List.hd E.Exp_matmul.setups) in
  Alcotest.(check (list string)) "smart picks the P4-2.4 pair"
    [ "dalmatian"; "dione" ]
    (List.sort compare c.E.Exp_matmul.smart_servers);
  Alcotest.(check bool) "smart faster than random" true
    (c.E.Exp_matmul.smart_time < c.E.Exp_matmul.random_time);
  Alcotest.(check bool) "improvement within the paper's ballpark" true
    (E.Exp_matmul.improvement c > 10.0 && E.Exp_matmul.improvement c < 60.0)

let test_matmul_table56_workload () =
  (* Table 5.6: the smart set avoids the three SuperPI-loaded servers *)
  let setup = List.nth E.Exp_matmul.setups 3 in
  let c = E.Exp_matmul.run_setup setup in
  List.iter
    (fun busy ->
      Alcotest.(check bool)
        (busy ^ " avoided")
        false
        (List.mem busy c.E.Exp_matmul.smart_servers))
    setup.E.Exp_matmul.workloads;
  Alcotest.(check int) "still found four" 4
    (List.length c.E.Exp_matmul.smart_servers);
  Alcotest.(check bool) "smart faster under load" true
    (c.E.Exp_matmul.smart_time < c.E.Exp_matmul.random_time)

(* ------------------------------------------------------------------ *)
(* Fig 5.3 + Tables 5.7-5.9 (scaled down)                               *)
(* ------------------------------------------------------------------ *)

let test_calibration_fig53 () =
  let rows = E.Exp_massd.calibration ~samples:4 () in
  List.iter
    (fun (s : E.Exp_massd.calibration_sample) ->
      let ratio = s.E.Exp_massd.achieved_kBps /. s.E.Exp_massd.set_kBps in
      Alcotest.(check bool)
        (Printf.sprintf "achieved %.0f tracks set %.0f"
           s.E.Exp_massd.achieved_kBps s.E.Exp_massd.set_kBps)
        true
        (ratio > 0.85 && ratio < 1.1))
    rows

let test_massd_table57 () =
  let t = E.Exp_massd.run_setup ~data_kb:10000 (List.hd E.Exp_massd.setups) in
  match t.E.Exp_massd.rows with
  | [ random; smart ] ->
    Alcotest.(check string) "smart row last" "Smart" smart.E.Exp_massd.label;
    (* the smart server comes from the fast group *)
    List.iter
      (fun s ->
        Alcotest.(check bool) "smart from group 1" true
          (List.mem s E.Exp_massd.group1))
      smart.E.Exp_massd.servers;
    Alcotest.(check bool) "smart ~5x faster (paper: 860/170)" true
      (smart.E.Exp_massd.kBps > 3.0 *. random.E.Exp_massd.kBps)
  | _ -> Alcotest.fail "expected two rows"

let test_massd_table59_monotone () =
  (* Table 5.9's staircase: more fast servers, more throughput *)
  let t =
    E.Exp_massd.run_setup ~data_kb:10000 (List.nth E.Exp_massd.setups 2)
  in
  let rates = List.map (fun r -> r.E.Exp_massd.kBps) t.E.Exp_massd.rows in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a < b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "0 < 1 < 2 < 3 fast servers" true (monotone rates)

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let test_ablation_init_speed () =
  match E.Exp_ablation.init_speed_ablation ~trials:4 () with
  | [ physical; virtual_ ] ->
    Alcotest.(check bool) "physical NIC has the knee" true
      physical.E.Exp_ablation.knee_significant;
    Alcotest.(check bool) "sub-MTU dragged down on physical" true
      (physical.E.Exp_ablation.sub_mtu_bw
      < 0.5 *. physical.E.Exp_ablation.super_mtu_bw);
    Alcotest.(check bool) "virtual interface recovers most of it" true
      (virtual_.E.Exp_ablation.sub_mtu_bw
      > 2.0 *. physical.E.Exp_ablation.sub_mtu_bw)
  | _ -> Alcotest.fail "expected two rows"

let test_ablation_spacing () =
  match E.Exp_ablation.spacing_ablation () with
  | [ b2b; spaced ] ->
    (* spaced probes read the shaped rate; back-to-back ones misread *)
    Alcotest.(check bool) "spaced within 15% of truth" true
      (Float.abs (spaced.E.Exp_ablation.measured_mbps -. 2.0) < 0.3);
    Alcotest.(check bool) "back-to-back further from truth" true
      (Float.abs (b2b.E.Exp_ablation.measured_mbps -. 2.0)
      > Float.abs (spaced.E.Exp_ablation.measured_mbps -. 2.0))
  | _ -> Alcotest.fail "expected two rows"

let test_ablation_modes () =
  match E.Exp_ablation.mode_ablation () with
  | [ central; distributed ] ->
    Alcotest.(check bool) "push pays standing bytes" true
      (central.E.Exp_ablation.standing_kBps
      > 4.0 *. distributed.E.Exp_ablation.standing_kBps);
    Alcotest.(check bool) "pull pays request latency" true
      (distributed.E.Exp_ablation.request_latency_ms
      > 2.0 *. central.E.Exp_ablation.request_latency_ms)
  | _ -> Alcotest.fail "expected two rows"

let test_ablation_staleness () =
  let rows = E.Exp_ablation.staleness_ablation () in
  Alcotest.(check int) "five thresholds" 5 (List.length rows);
  let row k =
    List.find (fun r -> r.E.Exp_ablation.missed_intervals = k) rows
  in
  (* detection latency grows with the threshold *)
  Alcotest.(check bool) "latency ordering" true
    ((row 1).E.Exp_ablation.detection_s < (row 3).E.Exp_ablation.detection_s
    && (row 3).E.Exp_ablation.detection_s < (row 10).E.Exp_ablation.detection_s);
  (* aggressive expiry is trigger-happy under loss; 3 intervals is safe *)
  Alcotest.(check bool) "threshold 1 false-fires" true
    ((row 1).E.Exp_ablation.false_expiries > 0);
  Alcotest.(check int) "threshold 3 quiet under 15% loss" 0
    (row 3).E.Exp_ablation.false_expiries;
  (* everyone eventually detects the real failure *)
  List.iter
    (fun r ->
      Alcotest.(check bool) "detected" true
        (r.E.Exp_ablation.detection_s < Float.infinity))
    rows

let () =
  Alcotest.run "smart_experiments"
    [
      ( "ch3",
        [
          Alcotest.test_case "Figs 3.3-3.5 MTU knees" `Slow
            test_mtu_sweeps_shape;
          Alcotest.test_case "Fig 3.6 sample paths" `Slow
            test_sample_paths_table32;
          Alcotest.test_case "Table 3.3 probe sizes" `Slow test_bw_table_shape;
          Alcotest.test_case "Table 3.4 monitor mesh" `Quick test_netmon_mesh;
        ] );
      ( "ch4",
        [ Alcotest.test_case "Table 4.1 SuperPI" `Quick test_superpi_table ] );
      ( "ch5",
        [
          Alcotest.test_case "Table 5.2 resources" `Slow test_resource_table;
          Alcotest.test_case "Fig 5.2 benchmark" `Quick test_benchmark_fig52;
          Alcotest.test_case "Table 5.3 matmul 2v2" `Slow test_matmul_table53;
          Alcotest.test_case "Table 5.6 workload" `Slow
            test_matmul_table56_workload;
          Alcotest.test_case "Fig 5.3 calibration" `Slow test_calibration_fig53;
          Alcotest.test_case "Table 5.7 massd 1v1" `Slow test_massd_table57;
          Alcotest.test_case "Table 5.9 staircase" `Slow
            test_massd_table59_monotone;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "Speed_init" `Slow test_ablation_init_speed;
          Alcotest.test_case "probe spacing" `Quick test_ablation_spacing;
          Alcotest.test_case "push vs pull" `Slow test_ablation_modes;
          Alcotest.test_case "staleness threshold" `Quick
            test_ablation_staleness;
        ] );
    ]
